"""``RecommendService``: micro-batched top-K serving on a frozen plan.

Single-user requests queue up (``enqueue``) and execute as one padded
batch (``flush``) against the plan's pinned item-embedding table.  An LRU
user-state cache keyed by ``(user, sequence)`` makes exact repeats free
and — for recurrent plans in ``padding="tight"`` mode — lets an
append-one-item request advance the cached GRU state by a single step
instead of re-encoding the whole history.

Padding modes
-------------
``"model"`` (default)
    Every batch is padded to the plan's ``max_len``, reproducing the
    training/evaluation batch layout exactly — scores match the graph
    path bit-for-bit (models with positional embeddings or unmasked
    recurrences are sensitive to the padding width).
``"tight"``
    Batches pad only to the longest queued sequence and recurrent plans
    step through valid positions only.  Padding-width invariant by
    construction (requires ``plan.padding_invariant``) and the only mode
    where incremental append is sound.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..data.batching import pad_sequences
from .plan import FrozenPlan, freeze
from .retrieval import topk_from_scores


@dataclass
class Recommendation:
    """Top-K result for one request (items best-first)."""

    user: Optional[int]
    items: np.ndarray
    scores: np.ndarray
    from_cache: bool = False
    incremental: bool = False


@dataclass
class ServiceStats:
    requests: int = 0
    batches: int = 0
    cache_hits: int = 0
    incremental_hits: int = 0
    full_encodes: int = 0
    evictions: int = 0


class RecommendService:
    """Serve top-K recommendations from a frozen forward plan.

    Parameters
    ----------
    model_or_plan:
        A trained model (frozen on the spot) or an existing plan.
    k:
        Recommendations per request.
    max_batch:
        Micro-batch width: a flush executes queued requests in padded
        batches of at most this many rows.
    cache_size:
        LRU capacity of the user-state cache (0 disables caching).
    padding:
        ``"model"`` or ``"tight"`` (see module docstring).
    """

    def __init__(self, model_or_plan, k: int = 10, max_batch: int = 64,
                 cache_size: int = 1024, padding: str = "model"):
        plan = (model_or_plan if isinstance(model_or_plan, FrozenPlan)
                else freeze(model_or_plan))
        if padding not in ("model", "tight"):
            raise ValueError(f"padding must be 'model' or 'tight', got {padding!r}")
        if padding == "tight" and not plan.padding_invariant:
            raise ValueError(
                f"{plan.model_name} is padding-width sensitive; "
                "tight padding would change its scores — use padding='model'")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.plan = plan
        self.k = k
        self.max_batch = max(1, int(max_batch))
        self.cache_size = int(cache_size)
        self.padding = padding
        self._incremental = (padding == "tight"
                             and plan.supports_incremental
                             and self.cache_size > 0)
        self._cache: OrderedDict = OrderedDict()
        self._pending: List[Tuple[Optional[int], tuple]] = []
        self.stats = ServiceStats()

    # ------------------------------------------------------------------
    def enqueue(self, user: Optional[int], sequence: Sequence[int]) -> int:
        """Queue one request; returns its index in the next flush."""
        seq = tuple(int(item) for item in sequence)
        if not seq:
            raise ValueError("cannot recommend from an empty sequence")
        if self.plan.max_len is not None:
            seq = seq[-self.plan.max_len:]
        self._pending.append((user, seq))
        self.stats.requests += 1
        return len(self._pending) - 1

    def recommend(self, user: Optional[int],
                  sequence: Sequence[int]) -> Recommendation:
        """Single-request convenience: enqueue + flush."""
        self.enqueue(user, sequence)
        return self.flush()[0]

    def recommend_many(self, requests: Sequence[Tuple[Optional[int], Sequence[int]]]
                       ) -> List[Recommendation]:
        for user, sequence in requests:
            self.enqueue(user, sequence)
        return self.flush()

    # ------------------------------------------------------------------
    def flush(self) -> List[Recommendation]:
        """Execute all queued requests as padded micro-batches."""
        pending, self._pending = self._pending, []
        if not pending:
            return []
        if not self.plan.supports_encode:
            return self._flush_fallback(pending)

        count = len(pending)
        reprs: List[Optional[np.ndarray]] = [None] * count
        flags = [(False, False)] * count
        to_encode = []
        for i, (user, seq) in enumerate(pending):
            key = (user, seq)
            entry = self._cache_get(key)
            if entry is not None:
                reprs[i] = entry["repr"]
                flags[i] = (True, False)
                self.stats.cache_hits += 1
                continue
            if self._incremental and len(seq) > 1:
                prev = self._cache_get((user, seq[:-1]))
                if prev is not None and prev.get("state") is not None:
                    state = self.plan.append_item(prev["state"], seq[-1])
                    reprs[i] = self.plan.state_repr(state)
                    flags[i] = (False, True)
                    self.stats.incremental_hits += 1
                    self._cache_put(key, reprs[i], state)
                    continue
            to_encode.append(i)

        for start in range(0, len(to_encode), self.max_batch):
            chunk = to_encode[start:start + self.max_batch]
            rows, states = self._encode_chunk([pending[i] for i in chunk])
            self.stats.batches += 1
            self.stats.full_encodes += len(chunk)
            for j, i in enumerate(chunk):
                reprs[i] = rows[j]
                state = None if states is None else [
                    layer[j:j + 1].copy() for layer in states]
                self._cache_put((pending[i][0], pending[i][1]),
                                rows[j], state)

        scores = self.plan.score(np.stack(reprs))
        top = topk_from_scores(scores, self.k)
        values = np.take_along_axis(scores, top, axis=1)
        return [
            Recommendation(user=pending[i][0], items=top[i],
                           scores=values[i], from_cache=flags[i][0],
                           incremental=flags[i][1])
            for i in range(count)
        ]

    # ------------------------------------------------------------------
    def _encode_chunk(self, rows) -> Tuple[np.ndarray, Optional[list]]:
        seqs = [list(seq) for _, seq in rows]
        width = self.plan.max_len if self.padding == "model" else None
        items, mask, _ = pad_sequences(seqs, max_len=width)
        users = [user for user, _ in rows]
        users_arr = (None if any(user is None for user in users)
                     else np.asarray(users))
        if self.padding == "tight":
            if self._incremental:
                return self.plan.encode_tight_with_state(items, mask)
            return self.plan.encode_tight(items, mask, users_arr), None
        return self.plan.encode(items, mask, users_arr), None

    def _flush_fallback(self, pending) -> List[Recommendation]:
        """No separate encode/score on fallback plans: forward per chunk."""
        results: List[Optional[Recommendation]] = [None] * len(pending)
        for start in range(0, len(pending), self.max_batch):
            chunk = list(range(start, min(start + self.max_batch,
                                          len(pending))))
            seqs = [list(pending[i][1]) for i in chunk]
            width = self.plan.max_len if self.padding == "model" else None
            items, mask, _ = pad_sequences(seqs, max_len=width)
            users = [pending[i][0] for i in chunk]
            users_arr = (None if any(user is None for user in users)
                         else np.asarray(users))
            scores = self.plan.forward(items, mask, users_arr)
            self.stats.batches += 1
            self.stats.full_encodes += len(chunk)
            top = topk_from_scores(scores, self.k)
            values = np.take_along_axis(scores, top, axis=1)
            for j, i in enumerate(chunk):
                results[i] = Recommendation(user=pending[i][0], items=top[j],
                                            scores=values[j])
        return results

    # ------------------------------------------------------------------
    def _cache_get(self, key) -> Optional[dict]:
        entry = self._cache.get(key)
        if entry is not None:
            self._cache.move_to_end(key)
        return entry

    def _cache_put(self, key, rep: np.ndarray,
                   state: Optional[list]) -> None:
        if self.cache_size <= 0:
            return
        self._cache[key] = {"repr": rep, "state": state}
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
            self.stats.evictions += 1

    def clear_cache(self) -> None:
        self._cache.clear()
