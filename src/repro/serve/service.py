"""``RecommendService``: micro-batched top-K serving on a frozen plan.

Single-user requests queue up (``enqueue``) and execute as one padded
batch (``flush``) against the plan's pinned item-embedding table.  An LRU
user-state cache keyed by ``(user, sequence)`` makes exact repeats free
and — for recurrent plans in ``padding="tight"`` mode — lets an
append-one-item request advance the cached recurrent (GRU) or KV-prefix
(attention) state by a single step instead of re-encoding the whole
history.  A per-user rolling state backs the exact-sequence cache so the
cheap path survives the ``max_len`` window rollover, where truncation
re-keys the LRU on every request.

Padding modes
-------------
``"model"`` (default)
    Every batch is padded to the plan's ``max_len``, reproducing the
    training/evaluation batch layout exactly — scores match the graph
    path bit-for-bit (models with positional embeddings or unmasked
    recurrences are sensitive to the padding width).
``"tight"``
    Batches pad only to the longest queued sequence; recurrent plans
    step through valid positions only and attention plans use their
    canonical right-aligned position layout.  Padding-width invariant
    by construction (requires ``plan.padding_invariant`` or
    ``plan.supports_tight``) and the only mode where incremental append
    is sound.

Failure isolation
-----------------
``flush`` never drops a request.  The queue is drained only after every
request has a result; an encode/score/forward error in one micro-batch
chunk triggers a per-request retry of that chunk alone (other chunks are
unaffected), and a request that still fails comes back as a
:class:`Recommendation` with ``error`` set (``failed`` is True) rather
than an exception.  An incremental-append failure falls back to a full
encode and is counted (``stats.incremental_failures``, first message
recorded).  The fault sites ``serve.encode`` / ``serve.score`` /
``serve.forward`` let the chaos harness (:mod:`repro.resilience`) drive
these paths deterministically.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.batching import pad_sequences
from ..resilience.faults import fault_point
from .ann import DEFAULT_NPROBE
from .plan import FrozenPlan, attach_ann_index, freeze
from .retrieval import topk_from_scores


@dataclass
class Recommendation:
    """Top-K result for one request (items best-first).

    A request that could not be served (its encode/score failed even
    after per-request retry) carries the failure in ``error`` and empty
    ``items``/``scores`` — the flush still answers it.
    """

    user: Optional[int]
    items: np.ndarray
    scores: np.ndarray
    from_cache: bool = False
    incremental: bool = False
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.error is not None


@dataclass
class ServiceStats:
    requests: int = 0
    batches: int = 0
    cache_hits: int = 0
    incremental_hits: int = 0
    full_encodes: int = 0
    evictions: int = 0
    #: micro-batch chunks whose batched execution failed and were
    #: re-executed request-by-request.
    chunk_retries: int = 0
    #: requests answered with an error result.
    errors: int = 0
    #: ``append_item`` failures that degraded to a full encode — a
    #: nonzero count means the incremental path is broken, not idle.
    incremental_failures: int = 0
    #: first ``append_item`` failure message, for diagnosis.
    first_incremental_failure: Optional[str] = None
    #: per-user rolling states dropped by the LRU bound.
    state_evictions: int = 0
    #: successful in-place plan hot-swaps.
    plan_swaps: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict snapshot (what workers ship over the pipe)."""
        return dict(vars(self))


class RecommendService:
    """Serve top-K recommendations from a frozen forward plan.

    Parameters
    ----------
    model_or_plan:
        A trained model (frozen on the spot) or an existing plan.
    k:
        Recommendations per request.
    max_batch:
        Micro-batch width: a flush executes queued requests in padded
        batches of at most this many rows.
    cache_size:
        LRU capacity of the user-state cache (0 disables caching).
    padding:
        ``"model"`` or ``"tight"`` (see module docstring).
    verify:
        Abstract-interpret the plan's program against its recorded
        weight shapes/dtypes before serving (default True; see
        :mod:`repro.analysis.dataflow`).  A drifted or corrupted plan
        raises ``PlanVerificationError`` here instead of failing mid
        request.
    retrieval:
        ``"exact"`` (default) scores the full item table and selects
        with ``topk_from_scores``; ``"ann"`` probes the plan's
        clustered MIPS index (:mod:`repro.serve.ann`) and scores only
        the probed clusters — sub-linear in the catalog, at a measured
        recall cost (see ``BENCH_retrieval.json``).  An index is built
        on the spot if the plan does not carry one.
    nprobe:
        Clusters probed per request in ``"ann"`` mode; ``nprobe >=
        num_clusters`` reproduces the exact results bitwise.  A request
        whose probed clusters hold fewer than ``k`` items returns a
        short (still best-first) recommendation list.
    """

    def __init__(self, model_or_plan, k: int = 10, max_batch: int = 64,
                 cache_size: int = 1024, padding: str = "model",
                 verify: bool = True, retrieval: str = "exact",
                 nprobe: int = DEFAULT_NPROBE):
        if isinstance(model_or_plan, FrozenPlan):
            plan = model_or_plan
            if verify:
                plan.verify()
        else:
            plan = freeze(model_or_plan, verify=verify)
        if padding not in ("model", "tight"):
            raise ValueError(f"padding must be 'model' or 'tight', got {padding!r}")
        if padding == "tight" and not (plan.padding_invariant
                                       or plan.supports_tight):
            raise ValueError(
                f"{plan.model_name} is padding-width sensitive; "
                "tight padding would change its scores — use padding='model'")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if retrieval not in ("exact", "ann"):
            raise ValueError(
                f"retrieval must be 'exact' or 'ann', got {retrieval!r}")
        if retrieval == "ann":
            if not plan.supports_encode:
                raise ValueError(
                    f"{plan.model_name} has no compiled encode/score "
                    "split; ANN retrieval needs one — use retrieval='exact'")
            if plan.ann_index is None:
                attach_ann_index(plan, verify=verify)
        self.retrieval = retrieval
        self.nprobe = max(1, int(nprobe))
        self.plan = plan
        self.k = k
        self.max_batch = max(1, int(max_batch))
        self.cache_size = int(cache_size)
        self.padding = padding
        self._incremental = (padding == "tight"
                             and plan.supports_incremental
                             and self.cache_size > 0)
        self._cache: OrderedDict = OrderedDict()
        #: user -> {"seq", "state"}: the rolling incremental state.
        #: Keyed per *user* (not per exact sequence) so it survives the
        #: window rollover that re-keys the LRU cache — once a sequence
        #: reaches ``max_len``, ``enqueue`` truncation shifts the
        #: ``(user, seq[:-1])`` cache key every request, and only this
        #: lineage probe keeps long-session users on the cheap path.
        self._user_state: OrderedDict = OrderedDict()
        self._pending: List[Tuple[Optional[int], tuple]] = []
        self.stats = ServiceStats()

    # ------------------------------------------------------------------
    def enqueue(self, user: Optional[int], sequence: Sequence[int]) -> int:
        """Queue one request; returns its index in the next flush."""
        seq = tuple(int(item) for item in sequence)
        if not seq:
            raise ValueError("cannot recommend from an empty sequence")
        if self.plan.max_len is not None:
            seq = seq[-self.plan.max_len:]
        self._pending.append((user, seq))
        self.stats.requests += 1
        return len(self._pending) - 1

    def recommend(self, user: Optional[int],
                  sequence: Sequence[int]) -> Recommendation:
        """Single-request convenience: enqueue + flush."""
        self.enqueue(user, sequence)
        return self.flush()[0]

    def recommend_many(self, requests: Sequence[Tuple[Optional[int], Sequence[int]]]
                       ) -> List[Recommendation]:
        for user, sequence in requests:
            self.enqueue(user, sequence)
        return self.flush()

    # ------------------------------------------------------------------
    def flush(self) -> List[Recommendation]:
        """Execute all queued requests as padded micro-batches.

        The pending queue is drained only once every request has a
        result (success or error) — an exception escaping mid-flush
        leaves the queue intact for a retry, and a contained chunk
        failure surfaces as per-request error results.
        """
        pending = list(self._pending)
        if not pending:
            return []
        if self.plan.supports_encode:
            results = self._flush_encode(pending)
        else:
            results = self._flush_fallback(pending)
        del self._pending[:len(pending)]
        return results

    def _flush_encode(self, pending) -> List[Recommendation]:
        count = len(pending)
        reprs: List[Optional[np.ndarray]] = [None] * count
        flags = [(False, False)] * count
        errors: List[Optional[str]] = [None] * count
        to_encode = []
        for i, (user, seq) in enumerate(pending):
            key = (user, seq)
            entry = self._cache_get(key)
            if entry is not None and entry.get("repr") is not None:
                reprs[i] = entry["repr"]
                flags[i] = (True, False)
                self.stats.cache_hits += 1
                continue
            if self._incremental and len(seq) > 1:
                advanced = self._probe_incremental(user, seq)
                if advanced is not None:
                    rep, state = advanced
                    reprs[i] = rep
                    flags[i] = (False, True)
                    self.stats.incremental_hits += 1
                    self._cache_put(key, rep, state)
                    self._user_state_put(user, seq, state)
                    continue
            to_encode.append(i)

        for start in range(0, len(to_encode), self.max_batch):
            chunk = to_encode[start:start + self.max_batch]
            try:
                rows, states = self._encode_chunk(
                    [pending[i] for i in chunk])
            except Exception:
                self._retry_encodes(pending, chunk, reprs, errors)
                continue
            self.stats.batches += 1
            self.stats.full_encodes += len(chunk)
            for j, i in enumerate(chunk):
                reprs[i] = rows[j]
                state = None if states is None else [
                    layer[j:j + 1].copy() for layer in states]
                self._cache_put((pending[i][0], pending[i][1]),
                                rows[j], state)
                self._user_state_put(pending[i][0], pending[i][1], state)

        ranked = self._topk_reprs(reprs, errors)
        results: List[Optional[Recommendation]] = [None] * count
        for i, (top, values) in ranked.items():
            if self.retrieval == "ann":
                keep = top >= 0          # strip short-probe-list padding
                top, values = top[keep], values[keep]
            results[i] = Recommendation(
                user=pending[i][0], items=top, scores=values,
                from_cache=flags[i][0], incremental=flags[i][1])
        for i in range(count):
            if results[i] is None:
                results[i] = self._error_result(
                    pending[i][0], errors[i] or "not scored")
        return results

    def _probe_incremental(self, user, seq
                           ) -> Optional[Tuple[np.ndarray, list]]:
        """Find a cached state one item behind ``seq`` and advance it.

        Two probes, cheapest first: the exact ``(user, seq[:-1])`` LRU
        entry, then the per-user rolling state.  The rolling probe
        accepts a *grow* (previous request was exactly ``seq[:-1]``) or
        — on plans whose state summarizes the full history
        (``plan.incremental_rollover``) — a window *slide*: both
        sequences sit at ``max_len`` and ``seq`` drops the oldest item
        for one new one.  A slid hit advances the full-history state, so
        its result tracks the untruncated sequence (exact w.r.t. the
        model) rather than re-encoding the truncated window.

        An ``append_item`` failure is counted in
        ``stats.incremental_failures`` (first message recorded) and
        degrades to a full encode of this request only.
        """
        prev = self._cache_get((user, seq[:-1]))
        state = None if prev is None else prev.get("state")
        if state is None and user is not None:
            rolled = self._user_state.get(user)
            if rolled is not None:
                prev_seq = rolled["seq"]
                grow = (len(seq) == len(prev_seq) + 1
                        and seq[:-1] == prev_seq)
                slide = (self.plan.incremental_rollover
                         and self.plan.max_len is not None
                         and len(seq) == len(prev_seq) == self.plan.max_len
                         and seq[:-1] == prev_seq[1:])
                if grow or slide:
                    self._user_state.move_to_end(user)
                    state = rolled["state"]
        if state is None:
            return None
        try:
            new_state = self.plan.append_item(state, seq[-1])
            rep = self.plan.state_repr(new_state)
        except Exception as exc:
            self.stats.incremental_failures += 1
            if self.stats.first_incremental_failure is None:
                self.stats.first_incremental_failure = (
                    f"{type(exc).__name__}: {exc}")
            return None
        return rep, new_state

    def _retry_encodes(self, pending, chunk, reprs, errors) -> None:
        """Batched encode failed: isolate by encoding request-by-request."""
        self.stats.chunk_retries += 1
        for i in chunk:
            try:
                rows, states = self._encode_chunk([pending[i]])
            except Exception as exc:
                errors[i] = f"{type(exc).__name__}: {exc}"
                self.stats.errors += 1
                continue
            self.stats.batches += 1
            self.stats.full_encodes += 1
            reprs[i] = rows[0]
            state = None if states is None else [
                layer[0:1].copy() for layer in states]
            self._cache_put((pending[i][0], pending[i][1]), rows[0], state)
            self._user_state_put(pending[i][0], pending[i][1], state)

    def _topk_reprs(self, reprs, errors
                    ) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
        """Rank all encoded rows, isolating a scoring failure per row."""
        ok = [i for i, rep in enumerate(reprs)
              if rep is not None and errors[i] is None]
        ranked: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        if not ok:
            return ranked
        try:
            tops, values = self._rank(np.stack([reprs[i] for i in ok]))
        except Exception:
            self.stats.chunk_retries += 1
            for i in ok:
                try:
                    top, value = self._rank(reprs[i][None])
                except Exception as exc:
                    errors[i] = f"{type(exc).__name__}: {exc}"
                    self.stats.errors += 1
                    continue
                ranked[i] = (top[0], value[0])
            return ranked
        for j, i in enumerate(ok):
            ranked[i] = (tops[j], values[j])
        return ranked

    def _rank(self, reprs: np.ndarray
              ) -> Tuple[np.ndarray, np.ndarray]:
        """``(B, d) -> ((B, k) items, (B, k) scores)`` on the configured
        retrieval path (both behind the ``serve.score`` fault site)."""
        if self.retrieval == "ann":
            fault_point("serve.score")
            return self.plan.ann_topk(reprs, self.k, self.nprobe)
        scores = self._score(reprs)
        top = topk_from_scores(scores, self.k)
        return top, np.take_along_axis(scores, top, axis=1)

    @staticmethod
    def _error_result(user, error: str) -> Recommendation:
        return Recommendation(user=user,
                              items=np.empty(0, dtype=np.int64),
                              scores=np.empty(0, dtype=np.float64),
                              error=error)

    # ------------------------------------------------------------------
    def _score(self, reprs: np.ndarray) -> np.ndarray:
        fault_point("serve.score")
        return self.plan.score(reprs)

    def _encode_chunk(self, rows) -> Tuple[np.ndarray, Optional[list]]:
        fault_point("serve.encode")
        seqs = [list(seq) for _, seq in rows]
        width = self.plan.max_len if self.padding == "model" else None
        items, mask, _ = pad_sequences(seqs, max_len=width)
        users = [user for user, _ in rows]
        users_arr = (None if any(user is None for user in users)
                     else np.asarray(users))
        if self.padding == "tight":
            if self._incremental:
                return self.plan.encode_tight_with_state(items, mask)
            return self.plan.encode_tight(items, mask, users_arr), None
        return self.plan.encode(items, mask, users_arr), None

    def _flush_fallback(self, pending) -> List[Recommendation]:
        """No separate encode/score on fallback plans: forward per chunk.

        Score rows are cached under the same LRU as encode-path state, so
        repeat sequences are served from cache with ``from_cache=True``.
        """
        results: List[Optional[Recommendation]] = [None] * len(pending)
        to_run = []
        for i, (user, seq) in enumerate(pending):
            entry = self._cache_get((user, seq))
            if entry is not None and entry.get("scores") is not None:
                row = entry["scores"]
                top = topk_from_scores(row[None], self.k)
                values = np.take_along_axis(row[None], top, axis=1)
                results[i] = Recommendation(user=user, items=top[0],
                                            scores=values[0],
                                            from_cache=True)
                self.stats.cache_hits += 1
                continue
            to_run.append(i)
        for start in range(0, len(to_run), self.max_batch):
            chunk = to_run[start:start + self.max_batch]
            try:
                scores = self._forward_rows([pending[i] for i in chunk])
            except Exception:
                self.stats.chunk_retries += 1
                for i in chunk:
                    try:
                        row = self._forward_rows([pending[i]])[0]
                    except Exception as exc:
                        results[i] = self._error_result(
                            pending[i][0], f"{type(exc).__name__}: {exc}")
                        self.stats.errors += 1
                        continue
                    self.stats.batches += 1
                    self.stats.full_encodes += 1
                    results[i] = self._fallback_result(pending[i], row)
                continue
            self.stats.batches += 1
            self.stats.full_encodes += len(chunk)
            top = topk_from_scores(scores, self.k)
            values = np.take_along_axis(scores, top, axis=1)
            for j, i in enumerate(chunk):
                self._cache_put(pending[i], None, None,
                                scores=scores[j].copy())
                results[i] = Recommendation(user=pending[i][0], items=top[j],
                                            scores=values[j])
        return results

    def _fallback_result(self, request, row: np.ndarray) -> Recommendation:
        self._cache_put(request, None, None, scores=row.copy())
        top = topk_from_scores(row[None], self.k)
        values = np.take_along_axis(row[None], top, axis=1)
        return Recommendation(user=request[0], items=top[0],
                              scores=values[0])

    def _forward_rows(self, rows) -> np.ndarray:
        fault_point("serve.forward")
        seqs = [list(seq) for _, seq in rows]
        width = self.plan.max_len if self.padding == "model" else None
        items, mask, _ = pad_sequences(seqs, max_len=width)
        users = [user for user, _ in rows]
        users_arr = (None if any(user is None for user in users)
                     else np.asarray(users))
        return self.plan.forward(items, mask, users_arr)

    # ------------------------------------------------------------------
    def _cache_get(self, key) -> Optional[dict]:
        entry = self._cache.get(key)
        if entry is not None:
            self._cache.move_to_end(key)
        return entry

    def _cache_put(self, key, rep: Optional[np.ndarray],
                   state: Optional[list],
                   scores: Optional[np.ndarray] = None) -> None:
        if self.cache_size <= 0:
            return
        self._cache[key] = {"repr": rep, "state": state, "scores": scores}
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
            self.stats.evictions += 1

    def _user_state_put(self, user, seq: tuple,
                        state: Optional[list]) -> None:
        """Roll the per-user state forward (bounded by ``cache_size``)."""
        if user is None or state is None or self.cache_size <= 0:
            return
        self._user_state[user] = {"seq": seq, "state": state}
        self._user_state.move_to_end(user)
        while len(self._user_state) > self.cache_size:
            self._user_state.popitem(last=False)
            self.stats.state_evictions += 1

    def clear_cache(self) -> None:
        self._cache.clear()
        self._user_state.clear()

    # ------------------------------------------------------------------
    def swap_plan(self, model_or_plan, verify: bool = True) -> FrozenPlan:
        """Hot-swap the serving plan in place; returns the old plan.

        The incoming plan is verified (abstract interpretation of its
        program) and checked against this service's padding/retrieval
        configuration *before* anything changes — a plan that fails
        verification leaves the service serving the old plan untouched.
        Queued-but-unflushed requests survive the swap and are answered
        by the new plan; both caches are invalidated (representations
        and recurrent/KV states from the old plan must never leak into
        the new plan's results).
        """
        if isinstance(model_or_plan, FrozenPlan):
            incoming = model_or_plan
            if verify:
                incoming.verify()
        else:
            incoming = freeze(model_or_plan, verify=verify)
        if self.padding == "tight" and not (incoming.padding_invariant
                                            or incoming.supports_tight):
            raise ValueError(
                f"{incoming.model_name} is padding-width sensitive; "
                "this service runs padding='tight'")
        if self.retrieval == "ann":
            if not incoming.supports_encode:
                raise ValueError(
                    f"{incoming.model_name} has no compiled encode/score "
                    "split; this service runs retrieval='ann'")
            if incoming.ann_index is None:
                attach_ann_index(incoming, verify=verify)
        previous = self.plan
        self.plan = incoming
        self._incremental = (self.padding == "tight"
                             and incoming.supports_incremental
                             and self.cache_size > 0)
        self._cache.clear()
        self._user_state.clear()
        self.stats.plan_swaps += 1
        return previous
