"""``repro.train`` — training loop with early stopping, checkpointing."""

from .checkpoint import (load_checkpoint, load_training_state,
                         save_checkpoint, save_training_state)
from .trainer import TrainConfig, Trainer, TrainResult

__all__ = ["TrainConfig", "Trainer", "TrainResult",
           "save_checkpoint", "load_checkpoint",
           "save_training_state", "load_training_state"]
