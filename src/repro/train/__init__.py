"""``repro.train`` — training loop with early stopping, checkpointing."""

from .checkpoint import load_checkpoint, save_checkpoint
from .trainer import TrainConfig, Trainer, TrainResult

__all__ = ["TrainConfig", "Trainer", "TrainResult",
           "save_checkpoint", "load_checkpoint"]
