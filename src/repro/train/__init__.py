"""``repro.train`` — training loop with early stopping, checkpointing."""

from .checkpoint import (load_checkpoint, load_training_state,
                         save_checkpoint, save_training_state)
from .online import (FineTuneOutcome, FineTuneSpec, FineTuneStore,
                     dataset_from_log, fine_tune_spec)
from .trainer import TrainConfig, Trainer, TrainResult

__all__ = ["TrainConfig", "Trainer", "TrainResult",
           "save_checkpoint", "load_checkpoint",
           "save_training_state", "load_training_state",
           "FineTuneSpec", "FineTuneOutcome", "FineTuneStore",
           "dataset_from_log", "fine_tune_spec"]
