"""Model checkpointing: save/restore parameters (and optimizer state).

Checkpoints are plain ``.npz`` archives — no pickling, no code execution
on load — holding every named parameter plus optional Adam moments, so
training can resume exactly where it stopped.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from ..nn import Adam
from ..nn.module import Module

_META_KEY = "__checkpoint_meta__"
_FORMAT_VERSION = 1


def save_checkpoint(model: Module, path: str | Path,
                    optimizer: Optional[Adam] = None,
                    metadata: Optional[Dict[str, object]] = None) -> Path:
    """Write ``model`` (and optionally Adam state) to ``path`` (.npz).

    ``metadata`` must be JSON-serializable; it is stored alongside the
    arrays and returned by :func:`load_checkpoint`.
    """
    path = Path(path)
    arrays: Dict[str, np.ndarray] = {
        f"param/{name}": p.data for name, p in model.named_parameters()}
    if optimizer is not None:
        arrays["optim/t"] = np.array([optimizer._t])
        for i, (m, v) in enumerate(zip(optimizer._m, optimizer._v)):
            arrays[f"optim/m/{i}"] = m
            arrays[f"optim/v/{i}"] = v
    meta = {
        "format_version": _FORMAT_VERSION,
        "num_parameters": model.num_parameters(),
        "has_optimizer": optimizer is not None,
        "user": metadata or {},
    }
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)
    return path


def load_checkpoint(model: Module, path: str | Path,
                    optimizer: Optional[Adam] = None) -> Dict[str, object]:
    """Restore ``model`` (and Adam state) from a checkpoint.

    Returns the user metadata stored at save time.  Raises ``KeyError`` on
    parameter-name mismatches and ``ValueError`` on shape mismatches, so a
    checkpoint can never be silently loaded into the wrong architecture.
    """
    path = Path(path)
    with np.load(path) as archive:
        meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
        if meta["format_version"] != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {meta['format_version']}")
        state = {key[len("param/"):]: archive[key]
                 for key in archive.files if key.startswith("param/")}
        model.load_state_dict(state)
        if optimizer is not None:
            if not meta["has_optimizer"]:
                raise KeyError("checkpoint holds no optimizer state")
            optimizer._t = int(archive["optim/t"][0])
            for i in range(len(optimizer.params)):
                optimizer._m[i][...] = archive[f"optim/m/{i}"]
                optimizer._v[i][...] = archive[f"optim/v/{i}"]
    return meta["user"]
