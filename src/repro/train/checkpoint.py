"""Model checkpointing: save/restore parameters (and optimizer state).

Checkpoints are plain ``.npz`` archives — no pickling, no code execution
on load — holding every named parameter plus optional optimizer state
(Adam moments or SGD momentum velocity), so training can resume exactly
where it stopped.  Loading is all-or-nothing: names, shapes, and
optimizer type are validated before anything is written into the model,
so a failed load never leaves a half-restored architecture behind.

All writes go through :mod:`repro.resilience.atomic` (temp file +
``os.replace``), so a crash mid-save leaves either the previous complete
checkpoint or the new one — never a truncated archive.  The save path is
also *suffix-normalized*: ``np.savez`` used to silently append ``.npz``
when missing, letting the caller's path and the on-disk file diverge;
now :func:`save_checkpoint` returns the real (normalized) path.

Beyond the model checkpoint, :func:`save_training_state` /
:func:`load_training_state` persist a full *resume point* — parameters,
best-so-far parameters, optimizer buffers, and an arbitrary
JSON-serializable trainer state (epoch counters, RNG streams, early-stop
bookkeeping) — which is what makes a killed run resumable to
bitwise-identical final metrics.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from ..nn import Adam, SGD
from ..nn.module import Module
from ..resilience.atomic import atomic_save_npz, normalize_suffix

_META_KEY = "__checkpoint_meta__"
_FORMAT_VERSION = 1

#: Fault sites armed by the chaos harness (see docs/robustness.md).
CHECKPOINT_SITE = "checkpoint.save"
TRAIN_STATE_SITE = "trainer.state"


def _optimizer_state(optimizer) -> Dict[str, np.ndarray]:
    """Flatten one supported optimizer's state into npz-ready arrays."""
    if isinstance(optimizer, Adam):
        arrays = {"optim/t": np.array([optimizer._t])}
        for i, (m, v) in enumerate(zip(optimizer._m, optimizer._v)):
            arrays[f"optim/m/{i}"] = m
            arrays[f"optim/v/{i}"] = v
        return arrays
    if isinstance(optimizer, SGD):
        return {f"optim/velocity/{i}": v
                for i, v in enumerate(optimizer._velocity)}
    raise TypeError(
        f"cannot checkpoint optimizer type {type(optimizer).__name__}; "
        f"supported: Adam, SGD")


def save_checkpoint(model: Module, path: str | Path,
                    optimizer: Optional[object] = None,
                    metadata: Optional[Dict[str, object]] = None) -> Path:
    """Write ``model`` (and optionally optimizer state) to ``path`` (.npz).

    ``optimizer`` may be an :class:`~repro.nn.Adam` or
    :class:`~repro.nn.SGD` instance; other types raise ``TypeError``.
    ``metadata`` must be JSON-serializable; it is stored alongside the
    arrays and returned by :func:`load_checkpoint`.

    The write is atomic (temp file + ``os.replace``) and the returned
    path carries the normalized ``.npz`` suffix — which may differ from
    the ``path`` argument, exactly as ``np.savez`` would have appended
    it on disk.
    """
    path = normalize_suffix(Path(path), ".npz")
    arrays: Dict[str, np.ndarray] = {
        f"param/{name}": p.data for name, p in model.named_parameters()}
    if optimizer is not None:
        arrays.update(_optimizer_state(optimizer))
    meta = {
        "format_version": _FORMAT_VERSION,
        "num_parameters": model.num_parameters(),
        "has_optimizer": optimizer is not None,
        "optimizer_type": (type(optimizer).__name__
                           if optimizer is not None else None),
        "user": metadata or {},
    }
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    return atomic_save_npz(path, arrays, site=CHECKPOINT_SITE)


def _restore_optimizer(optimizer, meta: Dict[str, object], archive) -> None:
    """Validate then copy optimizer state; raises before any mutation."""
    if not meta["has_optimizer"]:
        raise KeyError("checkpoint holds no optimizer state")
    # Checkpoints from before optimizer-type tagging only ever held Adam.
    saved_type = meta.get("optimizer_type") or "Adam"
    if type(optimizer).__name__ != saved_type:
        raise TypeError(
            f"checkpoint holds {saved_type} state but a "
            f"{type(optimizer).__name__} optimizer was given")
    if isinstance(optimizer, Adam):
        slots = {"optim/m": optimizer._m, "optim/v": optimizer._v}
    elif isinstance(optimizer, SGD):
        slots = {"optim/velocity": optimizer._velocity}
    else:
        raise TypeError(
            f"cannot restore optimizer type {type(optimizer).__name__}; "
            f"supported: Adam, SGD")
    for prefix, buffers in slots.items():
        for i, buffer in enumerate(buffers):
            key = f"{prefix}/{i}"
            if key not in archive.files:
                raise KeyError(f"checkpoint is missing {key} "
                               f"(saved with fewer parameters?)")
            if archive[key].shape != buffer.shape:
                raise ValueError(
                    f"optimizer state shape mismatch for {key}: "
                    f"{buffer.shape} vs {archive[key].shape}")
    for prefix, buffers in slots.items():
        for i, buffer in enumerate(buffers):
            buffer[...] = archive[f"{prefix}/{i}"]
    if isinstance(optimizer, Adam):
        optimizer._t = int(archive["optim/t"][0])


def load_checkpoint(model: Module, path: str | Path,
                    optimizer: Optional[object] = None) -> Dict[str, object]:
    """Restore ``model`` (and optimizer state) from a checkpoint.

    Returns the user metadata stored at save time.  Raises ``KeyError``
    on parameter-name mismatches, ``ValueError`` on shape mismatches, and
    ``TypeError`` on optimizer-type mismatches — all *before* mutating
    the model or optimizer, so a checkpoint can never be partially loaded
    into the wrong architecture.
    """
    path = Path(path)
    with np.load(path) as archive:
        meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
        if meta["format_version"] != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {meta['format_version']}")
        state = {key[len("param/"):]: archive[key]
                 for key in archive.files if key.startswith("param/")}
        model.load_state_dict(state)
        if optimizer is not None:
            _restore_optimizer(optimizer, meta, archive)
    return meta["user"]


def save_training_state(model: Module, optimizer, path: str | Path,
                        state: Dict[str, object],
                        best_state: Optional[Dict[str, np.ndarray]] = None
                        ) -> Path:
    """Atomically persist a complete mid-training resume point.

    One archive holds the current parameters, the optimizer buffers, the
    best-so-far parameter snapshot (``best/...`` keys, for early
    stopping), and ``state`` — an arbitrary JSON-serializable dict of
    trainer bookkeeping (epoch counters, RNG streams, metric history).
    """
    path = normalize_suffix(Path(path), ".npz")
    arrays: Dict[str, np.ndarray] = {
        f"param/{name}": p.data for name, p in model.named_parameters()}
    arrays.update(_optimizer_state(optimizer))
    for name, value in (best_state or {}).items():
        arrays[f"best/{name}"] = np.asarray(value)
    meta = {
        "format_version": _FORMAT_VERSION,
        "num_parameters": model.num_parameters(),
        "has_optimizer": True,
        "optimizer_type": type(optimizer).__name__,
        "train_state": state,
        "user": {},
    }
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    return atomic_save_npz(path, arrays, site=TRAIN_STATE_SITE)


def load_training_state(model: Module, optimizer, path: str | Path
                        ) -> Tuple[Dict[str, object],
                                   Optional[Dict[str, np.ndarray]]]:
    """Restore a resume point saved by :func:`save_training_state`.

    Returns ``(state, best_state)``.  Validation mirrors
    :func:`load_checkpoint`: mismatched names/shapes/optimizer types
    raise before the model or optimizer is touched.  Raises
    ``FileNotFoundError`` when no resume point exists and the usual
    corruption errors (``ValueError``/``zipfile.BadZipFile``/``OSError``)
    on a damaged archive — callers decide whether to start fresh.
    """
    path = Path(path)
    with np.load(path) as archive:
        meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
        if meta["format_version"] != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {meta['format_version']}")
        if "train_state" not in meta:
            raise KeyError(f"{path} is a plain checkpoint, not a "
                           f"training-state archive")
        params = {key[len("param/"):]: archive[key]
                  for key in archive.files if key.startswith("param/")}
        best = {key[len("best/"):]: archive[key].copy()
                for key in archive.files if key.startswith("best/")}
        model.load_state_dict(params)
        _restore_optimizer(optimizer, meta, archive)
    return meta["train_state"], (best or None)
