"""Crash-safe, memoized fine-tune jobs over the append-only event log.

The online loop is: events stream into an :class:`~repro.data.eventlog.
EventLog`, a periodic fine-tune job materializes the log into a
leave-one-out split and trains a fresh model, and the resulting
:class:`~repro.serve.FrozenPlan` hot-swaps into the running service
(:meth:`RecommendService.swap_plan` / :meth:`ClusterService.swap_plan`).
This module is the middle step, built on two guarantees:

* **Crash safety.**  Training runs with a per-epoch resume point
  (``train_state.npz`` via :class:`~repro.train.trainer.TrainConfig`
  ``checkpoint_path``/``resume``), so a killed job continues from its
  last completed epoch instead of restarting — the same machinery the
  run store uses, pointed at the job's own entry directory.

* **Memoization on the stream state.**  Entries are keyed on
  ``(spec.content_hash(), log.chain_head)``.  The chain head is a single
  digest committing to the entire event history, so a re-triggered job
  over an unchanged log is a pure cache hit (the committed checkpoint is
  reloaded, bitwise), while one new segment changes the key and retrains.
  ``metrics.json`` is the commit marker, mirroring ``repro.runs``.

``scripts/online_smoke.py`` drives the full loop — ingest, fine-tune,
hot-swap under chaos — and gates on ``BENCH_online.json``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from ..data.dataset import InteractionDataset, leave_one_out_split
from ..data.eventlog import EventLog
from ..registry import ModelSpec, build
from ..resilience.atomic import atomic_write_text, clean_stale_tmp
from .checkpoint import load_checkpoint, save_checkpoint
from .trainer import TrainConfig, Trainer, TrainResult

_METRICS_FILE = "metrics.json"   # written last: the commit marker
_CHECKPOINT_FILE = "model.npz"
_TRAIN_STATE_FILE = "train_state.npz"


def dataset_from_log(log: EventLog, num_items: Optional[int] = None,
                     name: Optional[str] = None) -> InteractionDataset:
    """Materialize the full log as an :class:`InteractionDataset`.

    Event ids are already 1-based dense ids (the log validates this on
    append), so no remapping happens: user ``u``'s sequence is their
    events in timestamp order (stable, so same-stamp events keep append
    order).  ``num_items`` widens the item universe beyond the largest
    id seen, for logs that have not yet touched every item.
    """
    log.refresh()
    per_user: Dict[int, list] = {}
    max_item = 0
    for user, item, stamp in log.events():
        per_user.setdefault(user, []).append((stamp, item))
        max_item = max(max_item, item)
    num_users = max(per_user) if per_user else 0
    if num_items is None:
        num_items = max_item
    elif num_items < max_item:
        raise ValueError(f"log contains item id {max_item}, beyond the "
                         f"declared universe of {num_items}")
    sequences: list = [[] for _ in range(num_users + 1)]
    for user, events in per_user.items():
        events.sort(key=lambda pair: pair[0])
        sequences[user] = [item for _, item in events]
    return InteractionDataset(
        name=name or f"eventlog-{log.chain_head[:12]}",
        num_users=num_users, num_items=num_items, sequences=sequences,
        metadata={"eventlog_chain_head": log.chain_head,
                  "eventlog_segments": log.num_segments})


@dataclass(frozen=True)
class FineTuneSpec:
    """Hashable description of one fine-tune job (sans stream state).

    The content hash deliberately excludes the event log: the job key is
    ``(spec, chain_head)``, so one spec reused across a growing stream
    produces one entry per distinct log state.
    """

    model: ModelSpec
    scale: str = "smoke"
    train: Tuple[Tuple[str, object], ...] = ()
    seed: int = 0
    max_len: Optional[int] = None
    min_length: int = 3

    def as_dict(self) -> Dict[str, object]:
        return {"model": self.model.as_dict(), "scale": self.scale,
                "train": dict(self.train), "seed": self.seed,
                "max_len": self.max_len, "min_length": self.min_length}

    def content_hash(self) -> str:
        payload = json.dumps(self.as_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def resolve_scale(self):
        from ..experiments.config import SCALES
        try:
            return SCALES[self.scale]
        except KeyError:
            raise KeyError(f"FineTuneSpec scale {self.scale!r} is not a "
                           f"named experiment scale; "
                           f"options: {sorted(SCALES)}")

    def resolved_max_len(self) -> int:
        if self.max_len is not None:
            return self.max_len
        return self.resolve_scale().max_len

    def train_config(self, **extras) -> TrainConfig:
        scale = self.resolve_scale()
        config = TrainConfig(epochs=scale.epochs,
                             batch_size=scale.batch_size,
                             patience=scale.patience, seed=self.seed)
        overrides = dict(self.train)
        overrides.update(extras)
        return replace(config, **overrides)


def fine_tune_spec(model: ModelSpec, scale: str = "smoke",
                   train: Optional[Dict[str, object]] = None,
                   seed: int = 0, max_len: Optional[int] = None,
                   min_length: int = 3) -> FineTuneSpec:
    """Canonical :class:`FineTuneSpec` factory (validates overrides)."""
    from ..runs import TRAIN_FIELDS
    train = dict(train or {})
    unknown = set(train) - set(TRAIN_FIELDS)
    if unknown:
        raise KeyError(f"unknown train-config overrides {sorted(unknown)}; "
                       f"valid: {TRAIN_FIELDS}")
    return FineTuneSpec(model=model, scale=scale,
                        train=tuple(sorted(train.items())), seed=seed,
                        max_len=max_len, min_length=min_length)


@dataclass
class FineTuneOutcome:
    """One fine-tune job's result: the trained model, ready to freeze."""

    spec: FineTuneSpec
    chain_head: str
    cached: bool
    model: object
    checkpoint: Path
    num_events: int
    result: Optional[TrainResult] = None
    history: list = field(default_factory=list)


class FineTuneStore:
    """Disk cache of fine-tune jobs keyed on ``(spec, chain head)``."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def entry_dir(self, spec: FineTuneSpec, chain_head: str) -> Path:
        return self.root / f"{spec.content_hash()}-{chain_head[:16]}"

    # ------------------------------------------------------------------
    def fine_tune(self, log: EventLog, spec: FineTuneSpec,
                  num_items: Optional[int] = None, force: bool = False,
                  **train_extras) -> FineTuneOutcome:
        """Train (or restore) the model for the log's current state.

        On a cache hit the committed checkpoint is reloaded into a
        freshly built model — bitwise the weights the original job
        produced.  On a miss, training resumes from any crash-left
        ``train_state.npz`` in the entry before committing.
        """
        log.refresh()
        chain_head = log.chain_head
        dataset = dataset_from_log(log, num_items=num_items)
        entry = self.entry_dir(spec, chain_head)
        model = self._build_model(spec, dataset)
        if not force:
            cached = self._load_entry(model, entry)
            if cached is not None:
                self.hits += 1
                return FineTuneOutcome(
                    spec=spec, chain_head=chain_head, cached=True,
                    model=model, checkpoint=entry / _CHECKPOINT_FILE,
                    num_events=log.num_events,
                    history=cached.get("history", []))
        self.misses += 1
        return self._train_and_persist(log, spec, dataset, model, entry,
                                       train_extras)

    # ------------------------------------------------------------------
    def _build_model(self, spec: FineTuneSpec, dataset: InteractionDataset):
        from types import SimpleNamespace
        prepared = SimpleNamespace(dataset=dataset,
                                   max_len=spec.resolved_max_len())
        return build(spec.model, prepared, spec.resolve_scale(),
                     rng=spec.seed)

    def _load_entry(self, model, entry: Path) -> Optional[Dict[str, object]]:
        metrics_path = entry / _METRICS_FILE
        try:
            payload = json.loads(metrics_path.read_text())
            load_checkpoint(model, entry / _CHECKPOINT_FILE)
            return payload
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError) as exc:
            # Damaged entry: clear the committed artifacts (keeping any
            # mid-training resume point) and retrain.
            import logging
            logging.getLogger("repro.train.online").warning(
                "fine-tune entry %s is corrupted (%s: %s); invalidating",
                entry, type(exc).__name__, exc)
            for name in (_METRICS_FILE, _CHECKPOINT_FILE):
                (entry / name).unlink(missing_ok=True)
            if entry.exists():
                clean_stale_tmp(entry)
            return None

    def _train_and_persist(self, log: EventLog, spec: FineTuneSpec,
                           dataset: InteractionDataset, model, entry: Path,
                           train_extras: Dict[str, object]
                           ) -> FineTuneOutcome:
        entry.mkdir(parents=True, exist_ok=True)
        split = leave_one_out_split(dataset,
                                    max_len=spec.resolved_max_len(),
                                    min_length=spec.min_length)
        config = spec.train_config(**train_extras)
        if config.checkpoint_path is None:
            config = replace(config,
                             checkpoint_path=str(entry / _TRAIN_STATE_FILE),
                             resume=True)
        result = Trainer(model, split, config).fit()
        save_checkpoint(model, entry / _CHECKPOINT_FILE,
                        metadata={"spec": spec.as_dict(),
                                  "chain_head": log.chain_head,
                                  "best_epoch": result.best_epoch})
        payload = {
            "chain_head": log.chain_head,
            "num_events": log.num_events,
            "num_segments": log.num_segments,
            "best_metric": result.best_metric,
            "best_epoch": result.best_epoch,
            "epochs_run": result.epochs_run,
            "history": result.history,
            "spec": spec.as_dict(),
        }
        # metrics.json commits the entry; the resume point is spent.
        atomic_write_text(entry / _METRICS_FILE,
                          json.dumps(payload, sort_keys=True, indent=1),
                          site="online.metrics")
        (entry / _TRAIN_STATE_FILE).unlink(missing_ok=True)
        return FineTuneOutcome(
            spec=spec, chain_head=log.chain_head, cached=False,
            model=model, checkpoint=entry / _CHECKPOINT_FILE,
            num_events=log.num_events, result=result,
            history=result.history)

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}


__all__ = ["FineTuneSpec", "FineTuneOutcome", "FineTuneStore",
           "dataset_from_log", "fine_tune_spec"]
