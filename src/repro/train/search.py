"""Hyper-parameter grid search over the validation metric.

The paper tunes the L2 regularization coefficient in {0, 1e-3, 1e-4} and
the initial Gumbel temperature in {1e-2 .. 1e3} on the validation set
(Sec. IV-A3).  :func:`grid_search` implements that protocol for any
combination of :class:`~repro.train.trainer.TrainConfig` fields and
model-constructor keyword arguments; :func:`grid_search_runs` is the
declarative variant that routes every trial through the content-addressed
:class:`~repro.runs.RunStore`, so repeated or overlapping searches only
train each configuration once.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Sequence, Tuple

from ..data.dataset import SequenceSplit
from .trainer import TrainConfig, Trainer


@dataclass
class SearchResult:
    """Outcome of a grid search."""

    best_params: Dict[str, object]
    best_metric: float
    trials: List[Tuple[Dict[str, object], float]] = field(default_factory=list)

    def ranked(self) -> List[Tuple[Dict[str, object], float]]:
        """Trials sorted best-first."""
        return sorted(self.trials, key=lambda t: -t[1])


def grid_search(model_factory: Callable[..., object], split: SequenceSplit,
                param_grid: Dict[str, Sequence],
                base_config: TrainConfig | None = None) -> SearchResult:
    """Exhaustively evaluate every parameter combination.

    Parameters
    ----------
    model_factory:
        Callable receiving the model-level parameters of each trial and
        returning a fresh model.  Parameters named like
        :class:`TrainConfig` fields (e.g. ``weight_decay``,
        ``learning_rate``) are routed to the trainer instead.
    param_grid:
        Mapping of parameter name to the values to try.
    """
    if not param_grid:
        raise ValueError("param_grid must name at least one parameter")
    base_config = base_config or TrainConfig()
    config_fields = set(vars(base_config))
    names = list(param_grid)
    trials: List[Tuple[Dict[str, object], float]] = []
    best_params: Dict[str, object] = {}
    best_metric = float("-inf")
    for combo in itertools.product(*(param_grid[n] for n in names)):
        params = dict(zip(names, combo))
        config_overrides = {k: v for k, v in params.items()
                            if k in config_fields}
        model_kwargs = {k: v for k, v in params.items()
                        if k not in config_fields}
        config = replace(base_config, **config_overrides)
        model = model_factory(**model_kwargs)
        result = Trainer(model, split, config).fit()
        trials.append((params, result.best_metric))
        if result.best_metric > best_metric:
            best_metric = result.best_metric
            best_params = params
    return SearchResult(best_params=best_params, best_metric=best_metric,
                        trials=trials)


def grid_search_runs(profile: str, scale, model: str,
                     param_grid: Dict[str, Sequence], seed: int = 0,
                     store=None) -> SearchResult:
    """Grid search through the run store: one cached run per combination.

    Parameters named like hash-relevant :class:`TrainConfig` fields
    (``learning_rate``, ``weight_decay``, ...) become train-config
    overrides; everything else becomes a :class:`~repro.registry.ModelSpec`
    kwarg (e.g. ``initial_tau`` for SSDRec).  The selection metric is the
    best *validation* metric of each run, matching :func:`grid_search` —
    and every trial lands in the store, so the winner's weights are
    immediately restorable via :meth:`~repro.runs.RunStore.load_model`.
    """
    from ..registry import model_spec
    from ..runs import TRAIN_FIELDS, default_store, run_spec

    if not param_grid:
        raise ValueError("param_grid must name at least one parameter")
    store = store if store is not None else default_store()
    names = list(param_grid)
    trials: List[Tuple[Dict[str, object], float]] = []
    best_params: Dict[str, object] = {}
    best_metric = float("-inf")
    for combo in itertools.product(*(param_grid[n] for n in names)):
        params = dict(zip(names, combo))
        train_overrides = {k: v for k, v in params.items()
                           if k in TRAIN_FIELDS}
        model_kwargs = {k: v for k, v in params.items()
                        if k not in TRAIN_FIELDS}
        spec = run_spec(profile, scale, model_spec(model, **model_kwargs),
                        train=train_overrides, seed=seed)
        outcome = store.run(spec)
        metric = outcome.result.best_metric
        trials.append((params, metric))
        if metric > best_metric:
            best_metric = metric
            best_params = params
    return SearchResult(best_params=best_params, best_metric=best_metric,
                        trials=trials)
