"""Training loop with early stopping (Sec. IV-A3).

Implements the paper's protocol: Adam (lr=0.001 default), mini-batches,
early stopping when validation HR@20 fails to improve for ``patience``
consecutive epochs, and restoring the best checkpoint at the end.  Models
may expose ``on_batch_end()`` (e.g. SSDRec anneals its Gumbel temperature
every 40 batches) and ``loss(batch)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..data.batching import DataLoader
from ..data.dataset import SequenceSplit
from ..eval.evaluator import Evaluator
from ..nn import Adam, clip_grad_norm
from ..nn.layers import Embedding


@dataclass
class TrainConfig:
    """Hyper-parameters of a training run."""

    epochs: int = 30
    batch_size: int = 256
    learning_rate: float = 1e-3
    weight_decay: float = 0.0
    patience: int = 10
    grad_clip: Optional[float] = 5.0
    eval_metric: str = "HR@20"
    seed: int = 0
    verbose: bool = False
    #: record per-op substrate timings (see :mod:`repro.nn.profiler`);
    #: zero overhead when False.
    profile: bool = False
    #: run under the autograd sanitizer (see :mod:`repro.nn.sanitizer`):
    #: saved-tensor version checks, NaN/Inf and broadcast-grad detection,
    #: dead-gradient tracking; zero overhead when False.
    sanitize: bool = False


@dataclass
class TrainResult:
    """Outcome of :meth:`Trainer.fit`."""

    best_metric: float
    best_epoch: int
    epochs_run: int
    history: List[Dict[str, float]] = field(default_factory=list)
    train_seconds_per_epoch: float = 0.0
    stopped_early: bool = False
    #: per-op profiler statistics (populated when ``config.profile``).
    profile: Optional[Dict[str, Dict[str, float]]] = None
    #: rendered profiler table (populated when ``config.profile``).
    profile_table: str = ""
    #: recorded sanitizer anomalies (populated when ``config.sanitize``;
    #: empty list means the run was clean).
    sanitizer_report: Optional[List[Dict[str, str]]] = None
    #: parameters that never received a gradient across the whole run
    #: (populated when ``config.sanitize``).
    dead_parameters: List[str] = field(default_factory=list)


class Trainer:
    """Fit a model on a :class:`SequenceSplit` with early stopping."""

    def __init__(self, model, split: SequenceSplit,
                 config: Optional[TrainConfig] = None,
                 loss_fn: Optional[Callable] = None,
                 scheduler_factory: Optional[Callable] = None,
                 evaluator: Optional[Evaluator] = None):
        self.model = model
        self.split = split
        self.config = config or TrainConfig()
        self.loss_fn = loss_fn or model.loss
        self.optimizer = Adam(model.parameters(),
                              lr=self.config.learning_rate,
                              weight_decay=self.config.weight_decay)
        # Optional per-epoch LR schedule: the factory receives the
        # optimizer and returns an object whose ``step`` takes either no
        # argument (epoch-indexed schedulers) or the validation metric
        # (ReduceOnPlateau).
        self.scheduler = (scheduler_factory(self.optimizer)
                          if scheduler_factory else None)
        # Callers running many models over the same split can pass a
        # shared validation evaluator to reuse its padded batches.
        self.evaluator = evaluator or Evaluator(
            split.valid, batch_size=self.config.batch_size,
            max_len=split.max_len)

    def fit(self) -> TrainResult:
        if self.config.sanitize:
            from ..nn.sanitizer import sanitizer
            sanitizer.reset()
            with sanitizer.watch():
                result = self._fit_profiled()
            result.dead_parameters = sanitizer.finalize_dead_grads()
            result.sanitizer_report = sanitizer.report()
            return result
        return self._fit_profiled()

    def _fit_profiled(self) -> TrainResult:
        if self.config.profile:
            from ..nn.profiler import profiler
            profiler.reset()
            with profiler.profile():
                result = self._fit()
            result.profile = profiler.as_dict()
            result.profile_table = profiler.summary()
            return result
        return self._fit()

    def _fit(self) -> TrainResult:
        config = self.config
        loader = DataLoader(self.split.train, batch_size=config.batch_size,
                            max_len=self.split.max_len, seed=config.seed)
        best_metric = -np.inf
        best_epoch = -1
        best_state = None
        bad_epochs = 0
        history: List[Dict[str, float]] = []
        epoch_times: List[float] = []
        stopped_early = False
        for epoch in range(config.epochs):
            start = time.perf_counter()
            epoch_loss = self._train_one_epoch(loader)
            epoch_times.append(time.perf_counter() - start)
            metrics = self.evaluator.evaluate(self.model)
            metrics["loss"] = epoch_loss
            current = metrics[config.eval_metric]
            if self.scheduler is not None:
                metrics["lr"] = self._step_scheduler(current)
            history.append(metrics)
            if config.verbose:
                print(f"epoch {epoch}: loss={epoch_loss:.4f} "
                      f"{config.eval_metric}={current:.4f}")
            if current > best_metric:
                best_metric = current
                best_epoch = epoch
                best_state = self.model.state_dict()
                bad_epochs = 0
            else:
                bad_epochs += 1
                if bad_epochs >= config.patience:
                    stopped_early = True
                    break
        if best_state is not None:
            self.model.load_state_dict(best_state)
        self._refresh_padding_rows()
        return TrainResult(
            best_metric=float(best_metric),
            best_epoch=best_epoch,
            epochs_run=len(history),
            history=history,
            train_seconds_per_epoch=float(np.mean(epoch_times)),
            stopped_early=stopped_early,
        )

    def _step_scheduler(self, metric: float) -> float:
        """Advance the LR schedule (metric-driven or epoch-indexed)."""
        import inspect
        signature = inspect.signature(self.scheduler.step)
        if signature.parameters:
            return self.scheduler.step(metric)
        return self.scheduler.step()

    # ------------------------------------------------------------------
    def _train_one_epoch(self, loader: DataLoader) -> float:
        self.model.train()
        losses: List[float] = []
        for batch in loader:
            self.optimizer.zero_grad()
            loss = self.loss_fn(batch)
            loss.backward()
            if self.config.sanitize:
                from ..nn.sanitizer import sanitizer
                sanitizer.watch_dead_grads(self.model.named_parameters())
            if self.config.grad_clip:
                clip_grad_norm(self.model.parameters(), self.config.grad_clip)
            self.optimizer.step()
            self._refresh_padding_rows()
            hook = getattr(self.model, "on_batch_end", None)
            if hook is not None:
                hook()
            losses.append(float(loss.item()))
        return float(np.mean(losses)) if losses else 0.0

    def _refresh_padding_rows(self) -> None:
        for module in self.model.modules():
            if isinstance(module, Embedding):
                module.apply_padding_mask()
