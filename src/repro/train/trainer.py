"""Training loop with early stopping (Sec. IV-A3).

Implements the paper's protocol: Adam (lr=0.001 default), mini-batches,
early stopping when validation HR@20 fails to improve for ``patience``
consecutive epochs, and restoring the best checkpoint at the end.  Models
may expose ``on_batch_end()`` (e.g. SSDRec anneals its Gumbel temperature
every 40 batches) and ``loss(batch)``.

Crash-safe training: with ``TrainConfig.checkpoint_path`` set, the
trainer atomically persists a full resume point after every
``checkpoint_every`` epochs — parameters, optimizer buffers, best-so-far
snapshot, early-stop counters, metric history, the data loader's shuffle
stream, the model's own RNG stream, and any model-specific
``train_state()`` (SSDRec's Gumbel temperature schedules).  A run killed
mid-training and restarted with ``resume=True`` continues from the last
completed epoch and reaches **bitwise-identical** final metrics, because
every source of state the remaining epochs consume is restored exactly.

Exactness is not guaranteed with a stateful LR ``scheduler_factory``
(scheduler internals beyond the current learning rate are not
serialized); the run store never uses schedulers, so its cached entries
are unaffected.
"""

from __future__ import annotations

import logging
import time
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from ..data.batching import DataLoader
from ..data.dataset import SequenceSplit
from ..data.stream import StreamSplit, build_loader
from ..eval.evaluator import Evaluator, make_evaluator
from ..nn import Adam, clip_grad_norm
from ..nn.layers import Embedding
from ..nn.rng import generator_state, restore_generator_state
from .checkpoint import load_training_state, save_training_state

logger = logging.getLogger("repro.train")


@dataclass
class TrainConfig:
    """Hyper-parameters of a training run."""

    epochs: int = 30
    batch_size: int = 256
    learning_rate: float = 1e-3
    weight_decay: float = 0.0
    patience: int = 10
    grad_clip: Optional[float] = 5.0
    eval_metric: str = "HR@20"
    seed: int = 0
    verbose: bool = False
    #: record per-op substrate timings (see :mod:`repro.nn.profiler`);
    #: zero overhead when False.
    profile: bool = False
    #: run under the autograd sanitizer (see :mod:`repro.nn.sanitizer`):
    #: saved-tensor version checks, NaN/Inf and broadcast-grad detection,
    #: dead-gradient tracking; zero overhead when False.
    sanitize: bool = False
    #: where to persist the crash-resume point (``.npz``); None disables
    #: mid-training checkpointing entirely.
    checkpoint_path: Optional[str] = None
    #: persist the resume point every N completed epochs.
    checkpoint_every: int = 1
    #: continue from an existing resume point at ``checkpoint_path``
    #: (missing or unreadable state falls back to a fresh run).
    resume: bool = False


@dataclass
class TrainResult:
    """Outcome of :meth:`Trainer.fit`."""

    best_metric: float
    best_epoch: int
    epochs_run: int
    history: List[Dict[str, float]] = field(default_factory=list)
    train_seconds_per_epoch: float = 0.0
    stopped_early: bool = False
    #: per-op profiler statistics (populated when ``config.profile``).
    profile: Optional[Dict[str, Dict[str, float]]] = None
    #: rendered profiler table (populated when ``config.profile``).
    profile_table: str = ""
    #: recorded sanitizer anomalies (populated when ``config.sanitize``;
    #: empty list means the run was clean).
    sanitizer_report: Optional[List[Dict[str, str]]] = None
    #: parameters that never received a gradient across the whole run
    #: (populated when ``config.sanitize``).
    dead_parameters: List[str] = field(default_factory=list)


class Trainer:
    """Fit a model on a :class:`SequenceSplit` with early stopping.

    Also accepts a :class:`~repro.data.stream.StreamSplit`: the train
    subset then feeds a seeded :class:`StreamingDataLoader` (bounded
    shuffle buffer) and validation runs through a
    :class:`~repro.eval.evaluator.StreamingEvaluator`, so training never
    materializes the example lists.  Crash resume works identically —
    both loaders expose the same ``rng_state`` surface.
    """

    def __init__(self, model, split: SequenceSplit | StreamSplit,
                 config: Optional[TrainConfig] = None,
                 loss_fn: Optional[Callable] = None,
                 scheduler_factory: Optional[Callable] = None,
                 evaluator: Optional[Evaluator] = None):
        self.model = model
        self.split = split
        self.config = config or TrainConfig()
        self.loss_fn = loss_fn or model.loss
        self.optimizer = Adam(model.parameters(),
                              lr=self.config.learning_rate,
                              weight_decay=self.config.weight_decay)
        # Optional per-epoch LR schedule: the factory receives the
        # optimizer and returns an object whose ``step`` takes either no
        # argument (epoch-indexed schedulers) or the validation metric
        # (ReduceOnPlateau).
        self.scheduler = (scheduler_factory(self.optimizer)
                          if scheduler_factory else None)
        # Callers running many models over the same split can pass a
        # shared validation evaluator to reuse its padded batches.
        self.evaluator = evaluator or make_evaluator(
            split.valid, batch_size=self.config.batch_size,
            max_len=split.max_len)

    def fit(self) -> TrainResult:
        if self.config.sanitize:
            from ..nn.sanitizer import sanitizer
            sanitizer.reset()
            with sanitizer.watch():
                result = self._fit_profiled()
            result.dead_parameters = sanitizer.finalize_dead_grads()
            result.sanitizer_report = sanitizer.report()
            return result
        return self._fit_profiled()

    def _fit_profiled(self) -> TrainResult:
        if self.config.profile:
            from ..nn.profiler import profiler
            profiler.reset()
            with profiler.profile():
                result = self._fit()
            result.profile = profiler.as_dict()
            result.profile_table = profiler.summary()
            return result
        return self._fit()

    def _fit(self) -> TrainResult:
        config = self.config
        loader = build_loader(self.split.train,
                              batch_size=config.batch_size,
                              max_len=self.split.max_len, seed=config.seed)
        best_metric = -np.inf
        best_epoch = -1
        best_state = None
        bad_epochs = 0
        history: List[Dict[str, float]] = []
        epoch_times: List[float] = []
        stopped_early = False
        start_epoch = 0
        resumed = self._try_resume(loader) if config.resume else None
        if resumed is not None:
            state, best_state = resumed
            start_epoch = int(state["epoch"]) + 1
            best_metric = float(state["best_metric"])
            best_epoch = int(state["best_epoch"])
            bad_epochs = int(state["bad_epochs"])
            history = list(state["history"])
            epoch_times = list(state["epoch_times"])
            stopped_early = bool(state["stopped_early"])
            if config.verbose:
                print(f"resuming from epoch {start_epoch} "
                      f"({config.checkpoint_path})")
        for epoch in range(start_epoch, config.epochs):
            if stopped_early:
                break
            start = time.perf_counter()
            epoch_loss = self._train_one_epoch(loader)
            epoch_times.append(time.perf_counter() - start)
            metrics = self.evaluator.evaluate(self.model)
            metrics["loss"] = epoch_loss
            current = metrics[config.eval_metric]
            if self.scheduler is not None:
                metrics["lr"] = self._step_scheduler(current)
            history.append(metrics)
            if config.verbose:
                print(f"epoch {epoch}: loss={epoch_loss:.4f} "
                      f"{config.eval_metric}={current:.4f}")
            if current > best_metric:
                best_metric = current
                best_epoch = epoch
                best_state = self.model.state_dict()
                bad_epochs = 0
            else:
                bad_epochs += 1
                if bad_epochs >= config.patience:
                    stopped_early = True
            if config.checkpoint_path is not None and (
                    stopped_early
                    or epoch == config.epochs - 1
                    or (epoch + 1 - start_epoch) % config.checkpoint_every
                    == 0):
                self._save_resume_point(
                    loader, epoch=epoch, best_metric=best_metric,
                    best_epoch=best_epoch, bad_epochs=bad_epochs,
                    history=history, epoch_times=epoch_times,
                    stopped_early=stopped_early, best_state=best_state)
        if best_state is not None:
            self.model.load_state_dict(best_state)
        self._refresh_padding_rows()
        return TrainResult(
            best_metric=float(best_metric),
            best_epoch=best_epoch,
            epochs_run=len(history),
            history=history,
            train_seconds_per_epoch=(float(np.mean(epoch_times))
                                     if epoch_times else 0.0),
            stopped_early=stopped_early,
        )

    # ------------------------------------------------------------------
    # crash resume
    def _save_resume_point(self, loader: DataLoader, *, epoch: int,
                           best_metric: float, best_epoch: int,
                           bad_epochs: int, history, epoch_times,
                           stopped_early: bool, best_state) -> None:
        state: Dict[str, object] = {
            "epoch": epoch,
            "best_metric": float(best_metric),
            "best_epoch": best_epoch,
            "bad_epochs": bad_epochs,
            "history": history,
            "epoch_times": epoch_times,
            "stopped_early": stopped_early,
            "lr": float(self.optimizer.lr),
            "loader_rng": loader.rng_state(),
        }
        model_rng = getattr(self.model, "rng", None)
        if model_rng is not None:
            state["model_rng"] = generator_state(model_rng)
        model_state_fn = getattr(self.model, "train_state", None)
        if model_state_fn is not None:
            state["model_state"] = model_state_fn()
        save_training_state(self.model, self.optimizer,
                            self.config.checkpoint_path, state,
                            best_state=best_state)

    def _try_resume(self, loader: DataLoader):
        """Load the resume point; None (fresh start) if absent/unreadable."""
        if self.config.checkpoint_path is None:
            return None
        path = Path(self.config.checkpoint_path)
        try:
            state, best_state = load_training_state(
                self.model, self.optimizer, path)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
            logger.warning("ignoring unreadable training state %s "
                           "(%s: %s); starting fresh",
                           path, type(exc).__name__, exc)
            return None
        self.optimizer.lr = float(state["lr"])
        loader.set_rng_state(state["loader_rng"])
        model_rng = getattr(self.model, "rng", None)
        if model_rng is not None and "model_rng" in state:
            restore_generator_state(model_rng, state["model_rng"])
        load_model_state = getattr(self.model, "load_train_state", None)
        if load_model_state is not None and "model_state" in state:
            load_model_state(state["model_state"])
        self._refresh_padding_rows()
        return state, best_state

    def _step_scheduler(self, metric: float) -> float:
        """Advance the LR schedule (metric-driven or epoch-indexed)."""
        import inspect
        signature = inspect.signature(self.scheduler.step)
        if signature.parameters:
            return self.scheduler.step(metric)
        return self.scheduler.step()

    # ------------------------------------------------------------------
    def _train_one_epoch(self, loader: DataLoader) -> float:
        self.model.train()
        losses: List[float] = []
        for batch in loader:
            self.optimizer.zero_grad()
            loss = self.loss_fn(batch)
            loss.backward()
            if self.config.sanitize:
                from ..nn.sanitizer import sanitizer
                sanitizer.watch_dead_grads(self.model.named_parameters())
            if self.config.grad_clip:
                clip_grad_norm(self.model.parameters(), self.config.grad_clip)
            self.optimizer.step()
            self._refresh_padding_rows()
            hook = getattr(self.model, "on_batch_end", None)
            if hook is not None:
                hook()
            losses.append(float(loss.item()))
        return float(np.mean(losses)) if losses else 0.0

    def _refresh_padding_rows(self) -> None:
        for module in self.model.modules():
            if isinstance(module, Embedding):
                module.apply_padding_mask()
