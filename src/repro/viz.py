"""Terminal visualization: ASCII bar charts and line plots.

The paper's figures are charts; with no plotting dependency available,
these helpers render the same series as readable terminal graphics.  Used
by the experiment runners for Fig. 1 (grouped bars) and Fig. 5 (curves).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np


def bar_chart(values: Dict[str, float], width: int = 40,
              title: str = "", fmt: str = "{:.3f}") -> str:
    """Horizontal ASCII bar chart of labelled values in [0, inf)."""
    if not values:
        raise ValueError("bar_chart needs at least one value")
    if any(v < 0 for v in values.values()):
        raise ValueError("bar_chart values must be non-negative")
    peak = max(values.values()) or 1.0
    label_width = max(len(k) for k in values)
    lines: List[str] = [title] if title else []
    for label, value in values.items():
        filled = int(round(width * value / peak))
        bar = "#" * filled
        lines.append(f"{label:<{label_width}} |{bar:<{width}}| "
                     + fmt.format(value))
    return "\n".join(lines)


def grouped_bar_chart(groups: Dict[str, Dict[str, float]], width: int = 40,
                      title: str = "") -> str:
    """Several labelled series, one block per group (Fig. 1 style)."""
    lines: List[str] = [title] if title else []
    peak = max((v for g in groups.values() for v in g.values()), default=1.0)
    peak = peak or 1.0
    for group, values in groups.items():
        lines.append(f"[{group}]")
        label_width = max(len(k) for k in values)
        for label, value in values.items():
            filled = int(round(width * value / peak))
            lines.append(f"  {label:<{label_width}} |{'#' * filled:<{width}}| "
                         f"{value:.3f}")
    return "\n".join(lines)


def line_plot(x: Sequence[float], series: Dict[str, Sequence[float]],
              height: int = 10, width: int = 60, title: str = "",
              logx: bool = False) -> str:
    """ASCII line plot of one or more series over shared x values.

    Each series gets a distinct marker; points are placed on a
    ``height x width`` character grid (Fig. 5 style).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.size < 2:
        raise ValueError("line_plot needs at least two x values")
    if logx:
        if (x <= 0).any():
            raise ValueError("logx requires positive x values")
        x = np.log10(x)
    markers = "ox+*sd"
    all_y = np.concatenate([np.asarray(v, dtype=np.float64)
                            for v in series.values()])
    lo, hi = float(all_y.min()), float(all_y.max())
    span = (hi - lo) or 1.0
    x_lo, x_hi = float(x.min()), float(x.max())
    x_span = (x_hi - x_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for marker, (name, ys) in zip(markers, series.items()):
        ys = np.asarray(ys, dtype=np.float64)
        if ys.shape != x.shape:
            raise ValueError(f"series {name!r} length mismatch")
        for xv, yv in zip(x, ys):
            col = int(round((xv - x_lo) / x_span * (width - 1)))
            row = height - 1 - int(round((yv - lo) / span * (height - 1)))
            grid[row][col] = marker
    lines: List[str] = [title] if title else []
    lines.append(f"{hi:9.4f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 9 + " ┤" + "".join(row))
    lines.append(f"{lo:9.4f} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + "└" + "─" * width)
    legend = "   ".join(f"{m}={name}" for m, (name, _) in
                        zip(markers, series.items()))
    axis = "log10(x)" if logx else "x"
    lines.append(f"{'':10} {axis}: {x.min():g} .. {x.max():g}    {legend}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line trend of values using block characters."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("sparkline needs at least one value")
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = float(values.min()), float(values.max())
    span = (hi - lo) or 1.0
    idx = ((values - lo) / span * (len(blocks) - 1)).round().astype(int)
    return "".join(blocks[i] for i in idx)
