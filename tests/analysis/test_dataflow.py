"""Tests for the abstract shape/dtype interpreter and plan verifier.

Covers the lattice primitives, end-to-end verification + runtime
cross-validation of every registered backbone (and SSDRec variants),
structured failures on deliberately corrupted plans at ``freeze()`` and
spool-load time, and the abstract memory-footprint estimates.
"""

import pickle

import numpy as np
import pytest

from repro.analysis.dataflow import (PlanVerificationError, cross_validate,
                                     default_plan_footprints,
                                     memory_footprint, plan_inputs,
                                     run_program, verify_plan)
from repro.analysis.signatures import (SIGNATURES, AbstractValue,
                                       SignatureError, aval,
                                       broadcast_shapes)
from repro.core import SSDRec, SSDRecConfig
from repro.data import generate
from repro.models import BACKBONES, GRU4Rec
from repro.serve import FallbackPlan, freeze
from repro.serve.cluster import ClusterService
from repro.serve.service import RecommendService

DIM = 16
MAX_LEN = 12
NUM_ITEMS = 60


def build_backbone(name: str, seed: int = 3):
    return BACKBONES[name](num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                           rng=np.random.default_rng(seed))


class TestAbstractValue:
    def test_nbytes_and_concretize_bind_the_batch_symbol(self):
        value = AbstractValue(("B", 10, 4), "float64")
        assert value.concretize(3) == (3, 10, 4)
        assert value.nbytes(3) == 3 * 10 * 4 * 8
        assert "B" in str(value)

    def test_aval_accepts_arrays_and_descriptors(self):
        arr = np.zeros((2, 3), dtype=np.float64)
        assert aval(arr) == AbstractValue((2, 3), "float64")
        desc = {"shape": (2, 3), "dtype": "float64", "nbytes": 48}
        assert aval(desc) == AbstractValue((2, 3), "float64")

    def test_broadcast_shapes(self):
        assert broadcast_shapes(("B", 1, 4), (1, 10, 4)) == ("B", 10, 4)
        with pytest.raises(SignatureError):
            broadcast_shapes(("B", 3), ("B", 4))

    def test_every_signature_is_callable(self):
        assert len(SIGNATURES) >= 30
        assert all(callable(fn) for fn in SIGNATURES.values())


class TestBackbonePlans:
    @pytest.mark.parametrize("name", sorted(BACKBONES))
    def test_verify_and_cross_validate(self, name):
        plan = freeze(build_backbone(name))  # verify=True already ran
        trace = verify_plan(plan)
        assert trace, name
        assert any(entry.traced for entry in trace)
        # Sanitizer-style ground truth: one real forward, exact match.
        assert cross_validate(plan) >= 1

    def test_program_final_output_is_scores(self):
        plan = freeze(build_backbone("SASRec"))
        env, _ = run_program(plan.program(), plan_inputs(plan),
                             plan_name="SASRec")
        scores = env["scores"]
        assert scores.shape == ("B", NUM_ITEMS + 1)
        assert scores.dtype == "float64"


class TestSSDRecPlans:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate("beauty", seed=0, scale=0.25)

    @pytest.mark.parametrize("backbone", ["GRU4Rec", "SASRec"])
    def test_gated_pipeline_verifies(self, dataset, backbone):
        model = SSDRec(dataset, backbone_cls=BACKBONES[backbone],
                       config=SSDRecConfig(dim=DIM, max_len=MAX_LEN),
                       rng=np.random.default_rng(1))
        plan = freeze(model)
        assert verify_plan(plan)
        assert cross_validate(plan) >= 1

    def test_gateless_variant_verifies(self, dataset):
        model = SSDRec(dataset, backbone_cls=GRU4Rec,
                       config=SSDRecConfig(dim=DIM, max_len=MAX_LEN,
                                           use_stage3=False),
                       rng=np.random.default_rng(4))
        plan = freeze(model)
        assert verify_plan(plan)
        assert cross_validate(plan) >= 1

    def test_fallback_plan_is_skipped_not_failed(self, dataset):
        model = SSDRec(dataset, backbone_cls=GRU4Rec,
                       config=SSDRecConfig(dim=DIM, max_len=MAX_LEN,
                                           denoise_gate="sparse-attention"),
                       rng=np.random.default_rng(9))
        plan = freeze(model)  # verify=True must not raise on fallback
        assert isinstance(plan, FallbackPlan)
        assert verify_plan(plan) is None
        assert memory_footprint(plan) is None


class TestCorruptedPlans:
    def test_wrong_weight_shape_fails_at_freeze_time(self):
        model = build_backbone("SASRec")
        weight = model.position_embedding.weight
        weight.data = np.ascontiguousarray(weight.data[:, :-1])
        with pytest.raises(PlanVerificationError) as excinfo:
            freeze(model)
        err = excinfo.value
        assert err.plan == "SASRec"
        assert err.op == "add_positions"
        assert err.step_index is not None
        assert "add_positions" in str(err)

    def test_wrong_weight_dtype_fails_verification(self):
        plan = freeze(build_backbone("GRU4Rec"))
        plan.grus[0]["w_hh"] = plan.grus[0]["w_hh"].astype(np.float32)
        with pytest.raises(PlanVerificationError) as excinfo:
            plan.verify()
        err = excinfo.value
        assert err.plan == "GRU4Rec"
        assert err.op == "gru_forward"
        assert "float32" in str(err) or "float64" in str(err)

    def test_unknown_op_names_the_step(self):
        plan = freeze(build_backbone("SASRec"))
        program = plan.program()
        program[0]["op"] = "warp_drive"
        with pytest.raises(PlanVerificationError) as excinfo:
            run_program(program, plan_inputs(plan), plan_name="SASRec")
        err = excinfo.value
        assert err.step_index == 0
        assert err.op == "warp_drive"
        assert "no transfer function" in str(err)

    def test_undefined_input_names_the_step(self):
        plan = freeze(build_backbone("SASRec"))
        program = plan.program()
        program[1]["in"] = ["ghost"]
        with pytest.raises(PlanVerificationError, match="ghost"):
            run_program(program, plan_inputs(plan), plan_name="SASRec")


class TestServiceVerifyWiring:
    def _corrupt(self):
        plan = freeze(build_backbone("GRU4Rec"))
        plan.grus[0]["w_hh"] = plan.grus[0]["w_hh"].astype(np.float32)
        return plan

    def test_recommend_service_verifies_by_default(self):
        with pytest.raises(PlanVerificationError):
            RecommendService(self._corrupt(), k=5)
        # Opting out must still construct (power tool for debugging).
        assert RecommendService(self._corrupt(), k=5, verify=False)

    def test_cluster_service_verifies_up_front(self):
        with pytest.raises(PlanVerificationError):
            ClusterService(self._corrupt(), num_workers=1, k=5)

    def test_corrupted_spool_fails_the_worker_handshake(self):
        service = ClusterService(build_backbone("GRU4Rec"), num_workers=1,
                                 k=5, dispatch_timeout=30.0)
        try:
            with open(service._plan_path, "rb") as fh:
                bad = pickle.load(fh)
            bad.grus[0]["w_hh"] = bad.grus[0]["w_hh"].astype(np.float32)
            with open(service._plan_path, "wb") as fh:
                pickle.dump(bad, fh)
            service.kill_worker(0)
            with pytest.raises(RuntimeError,
                               match="failed to load the plan spool"
                               ) as excinfo:
                service.recommend(1, [1, 2, 3])
            assert "gru_forward" in str(excinfo.value)
        finally:
            service.close()


class TestMemoryFootprint:
    def test_footprint_shape_and_batch_scaling(self):
        plan = freeze(build_backbone("SASRec"))
        footprint = memory_footprint(plan)
        assert footprint["model"] == "SASRec"
        assert footprint["steps"] == len(plan.program())
        assert footprint["weight_bytes"] > 0
        small = footprint["activations"]["1"]
        large = footprint["activations"]["64"]
        assert large["peak_step_bytes"] > small["peak_step_bytes"]
        assert small["total_bytes"] >= small["peak_step_bytes"]
        assert small["peak_step_op"] in SIGNATURES

    def test_default_footprints_cover_every_backbone(self):
        footprints = default_plan_footprints()
        assert [f["model"] for f in footprints] == sorted(BACKBONES)
        assert all(f["weight_bytes"] > 0 for f in footprints)
