"""Tests for the AST-based framework linter and its CLI gate.

Includes the tier-1 smoke test that executes the linter on the live
source tree (must be clean), seeded-violation fixtures for every rule,
and subprocess checks of ``scripts/static_check.py`` exit codes.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import RULES, Violation, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"
SCRIPT = REPO_ROOT / "scripts" / "static_check.py"


def write_tree(root: Path, files: dict) -> Path:
    """Materialize a {relpath: source} mini package tree."""
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


class TestLiveTree:
    def test_live_tree_is_clean(self):
        violations = run_lint(PACKAGE_ROOT, tests_root=REPO_ROOT / "tests")
        assert violations == [], "\n".join(str(v) for v in violations)

    def test_all_rules_registered(self):
        assert set(RULES) == {"unseeded-rng", "fused-oracle",
                              "eval-no-grad", "bare-parameter",
                              "serve-graph-free", "worker-boundary",
                              "experiments-via-registry",
                              "atomic-persistence", "dtype-discipline",
                              "buffer-aliasing", "plan-signature",
                              "exact-oracle", "bounded-memory",
                              "event-log-atomic"}

    def test_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown lint rules"):
            run_lint(PACKAGE_ROOT, rules=["no-such-rule"])


class TestUnseededRngRule:
    def test_flags_unseeded_and_direct_sampling(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"models/bad.py": """
            import numpy as np

            def sample():
                rng = np.random.default_rng()
                noise = np.random.rand(3)
                return rng, noise
        """})
        violations = run_lint(root, rules=["unseeded-rng"])
        assert [v.line for v in violations] == [5, 6]
        assert all(v.rule == "unseeded-rng" for v in violations)

    def test_allows_seeded_types_and_helper_module(self, tmp_path):
        root = write_tree(tmp_path / "repro", {
            "models/good.py": """
                import numpy as np

                def sample(rng: np.random.Generator, seed: int):
                    return np.random.default_rng(seed).normal()
            """,
            "nn/rng.py": """
                import numpy as np

                def default_generator():
                    return np.random.default_rng()
            """,
        })
        assert run_lint(root, rules=["unseeded-rng"]) == []


class TestFusedOracleRule:
    FUSED = """
        from .tensor import Tensor

        def my_kernel(x):
            return Tensor._make(x.data, (x,), lambda g: (g,))

        def _private_kernel(x):
            return Tensor._make(x.data, (x,), lambda g: (g,))
    """

    def test_flags_missing_oracle_and_test(self, tmp_path):
        root = write_tree(tmp_path / "repro",
                          {"nn/functional.py": self.FUSED,
                           "nn/reference.py": "\n"})
        tests = write_tree(tmp_path / "tests",
                           {"nn/test_fused_ops.py": "\n"})
        violations = run_lint(root, tests_root=tests,
                              rules=["fused-oracle"])
        messages = [v.message for v in violations]
        assert len(violations) == 2  # private kernel is exempt
        assert any("my_kernel_unfused" in m for m in messages)
        assert any("not exercised" in m for m in messages)

    def test_clean_when_oracle_and_test_exist(self, tmp_path):
        root = write_tree(tmp_path / "repro", {
            "nn/functional.py": self.FUSED,
            "nn/reference.py": "def my_kernel_unfused(x):\n    return x\n",
        })
        tests = write_tree(tmp_path / "tests", {
            "nn/test_fused_ops.py": "def test_my_kernel():\n    pass\n"})
        assert run_lint(root, tests_root=tests,
                        rules=["fused-oracle"]) == []


class TestEvalNoGradRule:
    def test_flags_forward_without_no_grad(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"eval/scorer.py": """
            class Scorer:
                def score(self, model, batch):
                    return model.forward(batch)
        """})
        violations = run_lint(root, rules=["eval-no-grad"])
        assert len(violations) == 1
        assert "Scorer" in violations[0].message

    def test_clean_with_no_grad_block(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"eval/scorer.py": """
            from ..nn import no_grad

            class Scorer:
                def score(self, model, batch):
                    with no_grad():
                        return model.forward_batch(batch)
        """})
        assert run_lint(root, rules=["eval-no-grad"]) == []


class TestBareParameterRule:
    def test_flags_bare_trainable_tensor_in_module(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"nn/bad_layer.py": """
            from .module import Module
            from .tensor import Tensor, randn

            class Base(Module):
                pass

            class BadLayer(Base):
                def __init__(self):
                    super().__init__()
                    self.w = Tensor([1.0], requires_grad=True)
                    self.v = randn((3,), requires_grad=True)
        """})
        violations = run_lint(root, rules=["bare-parameter"])
        assert len(violations) == 2  # transitive Module subclass caught
        assert all("Parameter" in v.message for v in violations)

    def test_clean_with_parameter_registration(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"nn/good_layer.py": """
            from .module import Module, Parameter
            from .tensor import Tensor

            class GoodLayer(Module):
                def __init__(self):
                    super().__init__()
                    self.w = Parameter([1.0])
                    self.buffer = Tensor([0.0])  # non-trainable: fine

            class NotAModule:
                def __init__(self):
                    self.w = Tensor([1.0], requires_grad=True)
        """})
        assert run_lint(root, rules=["bare-parameter"]) == []


class TestServeGraphFreeRule:
    def test_flags_tensor_calls_and_graph_imports(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"serve/executor.py": """
            from ..nn import Tensor, no_grad

            def encode(x):
                wrapped = Tensor(x)
                raw = ensure_tensor(x)
                node = Tensor._make(x, (), lambda g: ())
                return wrapped, raw, node
        """})
        violations = run_lint(root, rules=["serve-graph-free"])
        assert [v.line for v in violations] == [2, 5, 6, 7]
        assert all(v.rule == "serve-graph-free" for v in violations)

    def test_allows_numpy_and_no_grad(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"serve/executor.py": """
            import numpy as np

            from ..nn import inference_mode, no_grad

            def encode(x):
                with no_grad():
                    return np.zeros(3) + np.asarray(x)
        """})
        assert run_lint(root, rules=["serve-graph-free"]) == []

    def test_bench_module_is_exempt(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"serve/bench.py": """
            from ..nn import Tensor

            def baseline(x):
                return Tensor(x)
        """})
        assert run_lint(root, rules=["serve-graph-free"]) == []

    def test_other_packages_untouched(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"models/net.py": """
            from ..nn import Tensor

            def forward(x):
                return Tensor(x)
        """})
        assert run_lint(root, rules=["serve-graph-free"]) == []


class TestWorkerBoundaryRule:
    def test_flags_objects_shipped_over_the_pipe(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"serve/cluster.py": """
            def dispatch(conn, plan, model, fn):
                conn.send(plan)
                conn.send((1, model))
                conn.send(lambda batch: fn(batch))
        """})
        violations = run_lint(root, rules=["worker-boundary"])
        assert [v.line for v in violations] == [3, 4, 5]
        assert "worker process boundary" in violations[0].message

    def test_flags_process_args_and_nn_imports(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"serve/cluster.py": """
            from ..nn import no_grad

            def spawn(ctx, conn, model):
                return ctx.Process(target=work,
                                   args=(0, model.freeze(), conn))
        """})
        violations = run_lint(root, rules=["worker-boundary"])
        assert len(violations) == 3   # import + .freeze() + model name
        assert any("repro.nn" in v.message for v in violations)

    def test_clean_for_paths_primitives_and_arrays(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"serve/cluster.py": """
            import numpy as np

            def dispatch(ctx, conn, plan_path, config, service):
                conn.send((0, plan_path, dict(config)))
                conn.send(("stats", service.stats.as_dict()))
                conn.send(np.zeros(3))
                return ctx.Process(target=work,
                                   args=(0, plan_path, conn))
        """})
        assert run_lint(root, rules=["worker-boundary"]) == []

    def test_other_serve_modules_untouched(self, tmp_path):
        # Only the boundary modules are constrained: service.py holds a
        # live plan object by design, it never crosses a process.
        root = write_tree(tmp_path / "repro", {"serve/service.py": """
            def run(conn, plan):
                conn.send(plan)
        """})
        assert run_lint(root, rules=["worker-boundary"]) == []


class TestExperimentsViaRegistryRule:
    def test_flags_direct_and_subscript_construction(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"experiments/bad.py": """
            from ..core import SSDRec
            from ..models import BACKBONES

            def run(prepared, scale):
                wrapped = SSDRec(prepared.dataset)
                plain = BACKBONES["SASRec"](num_items=10, dim=4, max_len=8)
                return wrapped, plain
        """})
        violations = run_lint(root, rules=["experiments-via-registry"])
        assert [v.line for v in violations] == [6, 7]
        assert "registry.build" in violations[0].message

    def test_clean_when_using_registry(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"experiments/good.py": """
            from ..registry import build, model_spec

            def run(prepared, scale):
                return build(model_spec("SSDRec"), prepared, scale, rng=0)
        """})
        assert run_lint(root, rules=["experiments-via-registry"]) == []

    def test_other_packages_untouched(self, tmp_path):
        # Direct construction outside experiments/ (e.g. the registry
        # itself, tests, serve) is exactly where classes SHOULD be called.
        root = write_tree(tmp_path / "repro", {"registry.py": """
            from .core import SSDRec

            def build(spec, prepared, scale, rng=None):
                return SSDRec(prepared.dataset, rng=rng)
        """})
        assert run_lint(root, rules=["experiments-via-registry"]) == []


class TestAtomicPersistenceRule:
    def test_flags_inplace_writes_in_persistence_modules(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"runs.py": """
            import json
            import numpy as np

            def persist(entry, spec, ranks):
                (entry / "spec.json").write_text(json.dumps(spec))
                np.save(entry / "ranks.npy", ranks)
                with open(entry / "metrics.json", "w") as fh:
                    fh.write("{}")
        """})
        violations = run_lint(root, rules=["atomic-persistence"])
        assert [v.line for v in violations] == [6, 7, 8]
        assert all(v.rule == "atomic-persistence" for v in violations)

    def test_clean_with_atomic_helpers_and_reads(self, tmp_path):
        root = write_tree(tmp_path / "repro", {
            "runs.py": """
                import json
                import numpy as np

                from .resilience.atomic import atomic_write_text, npy_bytes

                def persist(entry, spec):
                    atomic_write_text(entry / "spec.json", json.dumps(spec))

                def load(entry):
                    with open(entry / "metrics.json") as fh:
                        return json.load(fh), np.load(entry / "ranks.npy")
            """,
            "train/checkpoint.py": """
                from ..resilience.atomic import atomic_save_npz

                def save(path, arrays):
                    return atomic_save_npz(path, arrays)
            """,
        })
        assert run_lint(root, rules=["atomic-persistence"]) == []

    def test_other_modules_untouched(self, tmp_path):
        # In-place writes outside the persistence modules (reports,
        # benchmarks) are fine — the rule targets run-store artifacts.
        root = write_tree(tmp_path / "repro", {"analysis/report.py": """
            def write(path, text):
                path.write_text(text)
        """})
        assert run_lint(root, rules=["atomic-persistence"]) == []


class TestEventLogAtomicRule:
    def test_flags_inplace_writes_in_eventlog_modules(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"data/eventlog.py": """
            import json

            def publish(path, manifest, payload):
                (path / "segment-000000.npy").write_bytes(payload)
                (path / "manifest.json").write_text(json.dumps(manifest))
        """})
        violations = run_lint(root, rules=["event-log-atomic"])
        assert [v.line for v in violations] == [5, 6]
        assert all(v.rule == "event-log-atomic" for v in violations)

    def test_clean_with_atomic_helpers(self, tmp_path):
        root = write_tree(tmp_path / "repro", {
            "data/eventlog.py": """
                import json

                from ..resilience.atomic import (atomic_write_bytes,
                                                 atomic_write_text)

                def publish(path, manifest, payload):
                    atomic_write_bytes(path / "segment-000000.npy", payload)
                    atomic_write_text(path / "manifest.json",
                                      json.dumps(manifest))

                def load(path):
                    return json.loads((path / "manifest.json").read_text())
            """,
            "train/online.py": """
                from ..resilience.atomic import atomic_write_text

                def commit(entry, text):
                    return atomic_write_text(entry / "metrics.json", text)
            """,
        })
        assert run_lint(root, rules=["event-log-atomic"]) == []


class TestDtypeDisciplineRule:
    def test_flags_dtypeless_allocations_and_rogue_pins(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"nn/alloc.py": """
            import numpy as np

            def make(n):
                a = np.zeros(n)
                b = np.full(n, 1.0)
                c = np.float64(0.0)
                return a, b, c
        """})
        violations = run_lint(root, rules=["dtype-discipline"])
        assert [v.line for v in violations] == [5, 6, 7]
        messages = [v.message for v in violations]
        assert any("explicit dtype" in m for m in messages)
        assert any("FLOAT64_POLICY" in m for m in messages)

    def test_clean_with_explicit_dtypes_in_policy_module(self, tmp_path):
        # nn/tensor.py is in FLOAT64_POLICY, so its pins are exempt.
        root = write_tree(tmp_path / "repro", {"nn/tensor.py": """
            import numpy as np

            def make(n):
                a = np.zeros(n, dtype=np.float64)
                b = np.empty(n, "float64")
                return a, b
        """})
        assert run_lint(root, rules=["dtype-discipline"]) == []

    def test_non_substrate_modules_untouched(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"data/gen.py": """
            import numpy as np

            def make(n):
                return np.zeros(n), np.float64(0.0)
        """})
        assert run_lint(root, rules=["dtype-discipline"]) == []


class TestBufferAliasingRule:
    def test_flags_aliasing_rebinding_and_scratch_returns(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"nn/optim.py": """
            import numpy as np

            class SGD:
                def step(self):
                    for p in self.params:
                        p.data = p.data - p.grad

            def square(x):
                np.matmul(x, x, out=x)
                return x

            class Kernel:
                def forward(self, x):
                    np.multiply(x, x, out=x)
                    return self._buf_out
        """})
        violations = run_lint(root, rules=["buffer-aliasing"])
        assert [v.line for v in violations] == [7, 10, 16]
        messages = [v.message for v in violations]
        assert any("augmented assignment" in m for m in messages)
        assert any("aliases input" in m for m in messages)
        assert any("scratch buffer" in m for m in messages)

    def test_clean_with_inplace_update_and_fresh_out(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"nn/optim.py": """
            import numpy as np

            class SGD:
                def step(self):
                    for p in self.params:
                        p.data -= p.grad

            def project(x, w, out):
                np.matmul(x, w, out=out)
                return out.copy()
        """})
        assert run_lint(root, rules=["buffer-aliasing"]) == []


class TestPlanSignatureRule:
    def test_flags_unregistered_ops_and_programless_plans(self, tmp_path):
        root = write_tree(tmp_path / "repro", {
            "analysis/signatures.py": """
                def signature(*names):
                    def register(fn):
                        return fn
                    return register

                @signature("linear")
                def sig_linear(ins, params):
                    return ins
            """,
            "serve/executors.py": """
                def linear(x, w, b):
                    return x @ w + b

                def mystery(x):
                    return x

                def _helper(x):
                    return x
            """,
            "serve/plan.py": """
                from . import executors as X

                class FrozenPlan:
                    pass

                class GoodPlan(FrozenPlan):
                    def encode_program(self, states, mask, out, prefix=""):
                        return []

                class BadPlan(FrozenPlan):
                    def forward(self, items):
                        return X.mystery(X.linear(items, None, None))
            """,
        })
        violations = run_lint(root, rules=["plan-signature"])
        messages = [v.message for v in violations]
        assert len(violations) == 3
        assert any("executor 'mystery'" in m for m in messages)
        assert any("X.mystery()" in m for m in messages)
        assert any("'BadPlan'" in m for m in messages)

    def test_tree_without_serving_layer_is_clean(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"models/net.py": "x = 1\n"})
        assert run_lint(root, rules=["plan-signature"]) == []


class TestExactOracleRule:
    ANN_USER = """
        from .ann import build_ann_index

        def serve(plan, reprs, k):
            return plan.ann_topk(reprs, k)
    """

    def test_flags_ann_use_without_oracle_anchored_test(self, tmp_path):
        root = write_tree(tmp_path / "repro",
                          {"serve/service.py": self.ANN_USER})
        tests = write_tree(tmp_path / "tests", {"serve/test_service.py": """
            def test_ann_runs():
                pass
        """})
        violations = run_lint(root, tests_root=tests,
                              rules=["exact-oracle"])
        assert len(violations) == 1
        assert violations[0].rule == "exact-oracle"
        assert "topk_from_scores" in violations[0].message

    def test_clean_when_a_test_pins_ann_to_the_exact_oracle(self, tmp_path):
        root = write_tree(tmp_path / "repro",
                          {"serve/service.py": self.ANN_USER})
        tests = write_tree(tmp_path / "tests", {"serve/test_ann.py": """
            from repro.serve import build_ann_index, topk_from_scores

            def test_full_probe_matches_exact():
                pass
        """})
        assert run_lint(root, tests_root=tests,
                        rules=["exact-oracle"]) == []

    def test_tree_without_ann_is_clean(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"serve/service.py": """
            def serve(plan, reprs, k):
                return plan.score(reprs)
        """})
        tests = write_tree(tmp_path / "tests",
                           {"serve/test_service.py": "x = 1\n"})
        assert run_lint(root, tests_root=tests,
                        rules=["exact-oracle"]) == []

    def test_source_only_tree_skips_the_rule(self, tmp_path):
        root = write_tree(tmp_path / "repro",
                          {"serve/service.py": self.ANN_USER})
        assert run_lint(root, rules=["exact-oracle"]) == []


class TestProjectRobustness:
    def test_syntax_error_reported_not_raised(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"nn/broken.py": "def f(:\n"})
        violations = run_lint(root, rules=["unseeded-rng"])
        assert len(violations) == 1
        assert violations[0].rule == "parse-error"
        assert "broken.py" in violations[0].path

    def test_empty_modules_run_clean_under_every_rule(self, tmp_path):
        root = write_tree(tmp_path / "repro", {
            "nn/empty.py": "", "serve/empty.py": "", "eval/empty.py": "",
            "experiments/empty.py": "", "runs.py": "",
        })
        assert run_lint(root) == []


class TestStaticCheckScript:
    def _run(self, *extra_args):
        return subprocess.run(
            [sys.executable, str(SCRIPT), *extra_args],
            capture_output=True, text=True, cwd=REPO_ROOT)

    def test_exit_zero_on_clean_tree(self, tmp_path):
        report = tmp_path / "report.json"
        proc = self._run("--json", str(report))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "OK" in proc.stdout
        payload = json.loads(report.read_text())
        assert payload["violations"] == []
        # The report carries the float64 exemption table and per-plan
        # abstract memory footprints.
        exemptions = payload["dtype_exemptions"]
        assert "serve/plan.py" in exemptions
        assert exemptions["serve/plan.py"]["reason"]
        assert exemptions["serve/plan.py"]["float64_sites"] > 0
        footprints = payload["plan_footprints"]
        assert {f["model"] for f in footprints} >= {"SASRec", "GRU4Rec"}
        assert all(f["weight_bytes"] > 0 for f in footprints)
        assert all("1" in f["activations"] and "64" in f["activations"]
                   for f in footprints)

    def test_empty_rules_list_fails_loudly(self):
        proc = self._run("--rules")
        assert proc.returncode == 2
        assert "no rule names" in proc.stderr
        assert "dtype-discipline" in proc.stderr  # lists valid rules

    def test_unknown_rule_fails_loudly(self):
        proc = self._run("--rules", "no-such-rule")
        assert proc.returncode == 2
        assert "unknown rules: no-such-rule" in proc.stderr
        assert "plan-signature" in proc.stderr

    def test_scripts_root_swept_for_unseeded_rng(self, tmp_path):
        src = write_tree(tmp_path / "repro", {"models/ok.py": "x = 1\n"})
        scripts = write_tree(tmp_path / "scripts", {"tool.py": """
            import numpy as np

            def main():
                return np.random.rand(3)
        """})
        report = tmp_path / "report.json"
        proc = self._run("--src-root", str(src),
                         "--tests-root", str(tmp_path / "missing"),
                         "--scripts-root", str(scripts),
                         "--rules", "unseeded-rng",
                         "--json", str(report))
        assert proc.returncode == 1
        payload = json.loads(report.read_text())
        assert len(payload["violations"]) == 1
        assert payload["violations"][0]["rule"] == "unseeded-rng"
        assert "tool.py" in payload["violations"][0]["path"]

    def test_exit_nonzero_on_seeded_violation(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"models/bad.py": """
            import numpy as np

            def sample():
                return np.random.default_rng().normal()
        """})
        report = tmp_path / "report.json"
        proc = self._run("--src-root", str(root),
                         "--tests-root", str(tmp_path / "missing"),
                         "--json", str(report))
        assert proc.returncode == 1
        assert "FAIL" in proc.stderr
        payload = json.loads(report.read_text())
        assert payload["violations"][0]["rule"] == "unseeded-rng"

    def test_violation_dict_round_trips(self):
        v = Violation(rule="unseeded-rng", path="x.py", line=3,
                      message="m")
        assert v.as_dict() == {"rule": "unseeded-rng", "path": "x.py",
                               "line": 3, "message": "m"}
        assert str(v) == "x.py:3: [unseeded-rng] m"


class TestBoundedMemoryRule:
    def test_flags_whole_column_materializations(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"data/store.py": """
            import numpy as np

            def bad(store):
                a = store.items.tolist()
                b = list(store.indptr)
                c = np.asarray(store.timestamps)
                return a, b, c
        """})
        violations = run_lint(root, rules=["bounded-memory"])
        assert [v.line for v in violations] == [5, 6, 7]
        assert all(v.rule == "bounded-memory" for v in violations)

    def test_windowed_slices_are_clean(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"data/stream.py": """
            import numpy as np

            def good(store, lo, hi):
                window = store.items[lo:hi]
                counts = np.asarray(store.items[lo:hi], dtype=np.int64)
                return window, counts
        """})
        assert run_lint(root, rules=["bounded-memory"]) == []

    def test_other_modules_untouched(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"models/free.py": """
            def fine(dataset):
                return dataset.items.tolist()
        """})
        assert run_lint(root, rules=["bounded-memory"]) == []


class TestCliLintSubcommand:
    def _run(self, *extra_args):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "lint", *extra_args],
            capture_output=True, text=True, cwd=REPO_ROOT, env=env)

    def test_clean_tree_exits_zero(self, tmp_path):
        report = tmp_path / "report.json"
        proc = self._run("--json", str(report))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "OK: no violations" in proc.stdout
        assert json.loads(report.read_text())["violations"] == []

    def test_rule_subset_runs(self):
        proc = self._run("--rules", "unseeded-rng", "plan-signature")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "2 rules" in proc.stdout

    def test_empty_rules_list_fails_loudly(self):
        proc = self._run("--rules")
        assert proc.returncode == 2
        assert "available rules" in proc.stderr

    def test_unknown_rule_fails_loudly(self):
        proc = self._run("--rules", "no-such-rule")
        assert proc.returncode == 2
        assert "unknown lint rules" in proc.stderr
