"""Tests for the AST-based framework linter and its CLI gate.

Includes the tier-1 smoke test that executes the linter on the live
source tree (must be clean), seeded-violation fixtures for every rule,
and subprocess checks of ``scripts/static_check.py`` exit codes.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import RULES, Violation, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"
SCRIPT = REPO_ROOT / "scripts" / "static_check.py"


def write_tree(root: Path, files: dict) -> Path:
    """Materialize a {relpath: source} mini package tree."""
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


class TestLiveTree:
    def test_live_tree_is_clean(self):
        violations = run_lint(PACKAGE_ROOT, tests_root=REPO_ROOT / "tests")
        assert violations == [], "\n".join(str(v) for v in violations)

    def test_all_rules_registered(self):
        assert set(RULES) == {"unseeded-rng", "fused-oracle",
                              "eval-no-grad", "bare-parameter",
                              "serve-graph-free", "worker-boundary",
                              "experiments-via-registry",
                              "atomic-persistence"}

    def test_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown lint rules"):
            run_lint(PACKAGE_ROOT, rules=["no-such-rule"])


class TestUnseededRngRule:
    def test_flags_unseeded_and_direct_sampling(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"models/bad.py": """
            import numpy as np

            def sample():
                rng = np.random.default_rng()
                noise = np.random.rand(3)
                return rng, noise
        """})
        violations = run_lint(root, rules=["unseeded-rng"])
        assert [v.line for v in violations] == [5, 6]
        assert all(v.rule == "unseeded-rng" for v in violations)

    def test_allows_seeded_types_and_helper_module(self, tmp_path):
        root = write_tree(tmp_path / "repro", {
            "models/good.py": """
                import numpy as np

                def sample(rng: np.random.Generator, seed: int):
                    return np.random.default_rng(seed).normal()
            """,
            "nn/rng.py": """
                import numpy as np

                def default_generator():
                    return np.random.default_rng()
            """,
        })
        assert run_lint(root, rules=["unseeded-rng"]) == []


class TestFusedOracleRule:
    FUSED = """
        from .tensor import Tensor

        def my_kernel(x):
            return Tensor._make(x.data, (x,), lambda g: (g,))

        def _private_kernel(x):
            return Tensor._make(x.data, (x,), lambda g: (g,))
    """

    def test_flags_missing_oracle_and_test(self, tmp_path):
        root = write_tree(tmp_path / "repro",
                          {"nn/functional.py": self.FUSED,
                           "nn/reference.py": "\n"})
        tests = write_tree(tmp_path / "tests",
                           {"nn/test_fused_ops.py": "\n"})
        violations = run_lint(root, tests_root=tests,
                              rules=["fused-oracle"])
        messages = [v.message for v in violations]
        assert len(violations) == 2  # private kernel is exempt
        assert any("my_kernel_unfused" in m for m in messages)
        assert any("not exercised" in m for m in messages)

    def test_clean_when_oracle_and_test_exist(self, tmp_path):
        root = write_tree(tmp_path / "repro", {
            "nn/functional.py": self.FUSED,
            "nn/reference.py": "def my_kernel_unfused(x):\n    return x\n",
        })
        tests = write_tree(tmp_path / "tests", {
            "nn/test_fused_ops.py": "def test_my_kernel():\n    pass\n"})
        assert run_lint(root, tests_root=tests,
                        rules=["fused-oracle"]) == []


class TestEvalNoGradRule:
    def test_flags_forward_without_no_grad(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"eval/scorer.py": """
            class Scorer:
                def score(self, model, batch):
                    return model.forward(batch)
        """})
        violations = run_lint(root, rules=["eval-no-grad"])
        assert len(violations) == 1
        assert "Scorer" in violations[0].message

    def test_clean_with_no_grad_block(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"eval/scorer.py": """
            from ..nn import no_grad

            class Scorer:
                def score(self, model, batch):
                    with no_grad():
                        return model.forward_batch(batch)
        """})
        assert run_lint(root, rules=["eval-no-grad"]) == []


class TestBareParameterRule:
    def test_flags_bare_trainable_tensor_in_module(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"nn/bad_layer.py": """
            from .module import Module
            from .tensor import Tensor, randn

            class Base(Module):
                pass

            class BadLayer(Base):
                def __init__(self):
                    super().__init__()
                    self.w = Tensor([1.0], requires_grad=True)
                    self.v = randn((3,), requires_grad=True)
        """})
        violations = run_lint(root, rules=["bare-parameter"])
        assert len(violations) == 2  # transitive Module subclass caught
        assert all("Parameter" in v.message for v in violations)

    def test_clean_with_parameter_registration(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"nn/good_layer.py": """
            from .module import Module, Parameter
            from .tensor import Tensor

            class GoodLayer(Module):
                def __init__(self):
                    super().__init__()
                    self.w = Parameter([1.0])
                    self.buffer = Tensor([0.0])  # non-trainable: fine

            class NotAModule:
                def __init__(self):
                    self.w = Tensor([1.0], requires_grad=True)
        """})
        assert run_lint(root, rules=["bare-parameter"]) == []


class TestServeGraphFreeRule:
    def test_flags_tensor_calls_and_graph_imports(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"serve/executor.py": """
            from ..nn import Tensor, no_grad

            def encode(x):
                wrapped = Tensor(x)
                raw = ensure_tensor(x)
                node = Tensor._make(x, (), lambda g: ())
                return wrapped, raw, node
        """})
        violations = run_lint(root, rules=["serve-graph-free"])
        assert [v.line for v in violations] == [2, 5, 6, 7]
        assert all(v.rule == "serve-graph-free" for v in violations)

    def test_allows_numpy_and_no_grad(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"serve/executor.py": """
            import numpy as np

            from ..nn import inference_mode, no_grad

            def encode(x):
                with no_grad():
                    return np.zeros(3) + np.asarray(x)
        """})
        assert run_lint(root, rules=["serve-graph-free"]) == []

    def test_bench_module_is_exempt(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"serve/bench.py": """
            from ..nn import Tensor

            def baseline(x):
                return Tensor(x)
        """})
        assert run_lint(root, rules=["serve-graph-free"]) == []

    def test_other_packages_untouched(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"models/net.py": """
            from ..nn import Tensor

            def forward(x):
                return Tensor(x)
        """})
        assert run_lint(root, rules=["serve-graph-free"]) == []


class TestWorkerBoundaryRule:
    def test_flags_objects_shipped_over_the_pipe(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"serve/cluster.py": """
            def dispatch(conn, plan, model, fn):
                conn.send(plan)
                conn.send((1, model))
                conn.send(lambda batch: fn(batch))
        """})
        violations = run_lint(root, rules=["worker-boundary"])
        assert [v.line for v in violations] == [3, 4, 5]
        assert "worker process boundary" in violations[0].message

    def test_flags_process_args_and_nn_imports(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"serve/cluster.py": """
            from ..nn import no_grad

            def spawn(ctx, conn, model):
                return ctx.Process(target=work,
                                   args=(0, model.freeze(), conn))
        """})
        violations = run_lint(root, rules=["worker-boundary"])
        assert len(violations) == 3   # import + .freeze() + model name
        assert any("repro.nn" in v.message for v in violations)

    def test_clean_for_paths_primitives_and_arrays(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"serve/cluster.py": """
            import numpy as np

            def dispatch(ctx, conn, plan_path, config, service):
                conn.send((0, plan_path, dict(config)))
                conn.send(("stats", service.stats.as_dict()))
                conn.send(np.zeros(3))
                return ctx.Process(target=work,
                                   args=(0, plan_path, conn))
        """})
        assert run_lint(root, rules=["worker-boundary"]) == []

    def test_other_serve_modules_untouched(self, tmp_path):
        # Only the boundary modules are constrained: service.py holds a
        # live plan object by design, it never crosses a process.
        root = write_tree(tmp_path / "repro", {"serve/service.py": """
            def run(conn, plan):
                conn.send(plan)
        """})
        assert run_lint(root, rules=["worker-boundary"]) == []


class TestExperimentsViaRegistryRule:
    def test_flags_direct_and_subscript_construction(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"experiments/bad.py": """
            from ..core import SSDRec
            from ..models import BACKBONES

            def run(prepared, scale):
                wrapped = SSDRec(prepared.dataset)
                plain = BACKBONES["SASRec"](num_items=10, dim=4, max_len=8)
                return wrapped, plain
        """})
        violations = run_lint(root, rules=["experiments-via-registry"])
        assert [v.line for v in violations] == [6, 7]
        assert "registry.build" in violations[0].message

    def test_clean_when_using_registry(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"experiments/good.py": """
            from ..registry import build, model_spec

            def run(prepared, scale):
                return build(model_spec("SSDRec"), prepared, scale, rng=0)
        """})
        assert run_lint(root, rules=["experiments-via-registry"]) == []

    def test_other_packages_untouched(self, tmp_path):
        # Direct construction outside experiments/ (e.g. the registry
        # itself, tests, serve) is exactly where classes SHOULD be called.
        root = write_tree(tmp_path / "repro", {"registry.py": """
            from .core import SSDRec

            def build(spec, prepared, scale, rng=None):
                return SSDRec(prepared.dataset, rng=rng)
        """})
        assert run_lint(root, rules=["experiments-via-registry"]) == []


class TestAtomicPersistenceRule:
    def test_flags_inplace_writes_in_persistence_modules(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"runs.py": """
            import json
            import numpy as np

            def persist(entry, spec, ranks):
                (entry / "spec.json").write_text(json.dumps(spec))
                np.save(entry / "ranks.npy", ranks)
                with open(entry / "metrics.json", "w") as fh:
                    fh.write("{}")
        """})
        violations = run_lint(root, rules=["atomic-persistence"])
        assert [v.line for v in violations] == [6, 7, 8]
        assert all(v.rule == "atomic-persistence" for v in violations)

    def test_clean_with_atomic_helpers_and_reads(self, tmp_path):
        root = write_tree(tmp_path / "repro", {
            "runs.py": """
                import json
                import numpy as np

                from .resilience.atomic import atomic_write_text, npy_bytes

                def persist(entry, spec):
                    atomic_write_text(entry / "spec.json", json.dumps(spec))

                def load(entry):
                    with open(entry / "metrics.json") as fh:
                        return json.load(fh), np.load(entry / "ranks.npy")
            """,
            "train/checkpoint.py": """
                from ..resilience.atomic import atomic_save_npz

                def save(path, arrays):
                    return atomic_save_npz(path, arrays)
            """,
        })
        assert run_lint(root, rules=["atomic-persistence"]) == []

    def test_other_modules_untouched(self, tmp_path):
        # In-place writes outside the persistence modules (reports,
        # benchmarks) are fine — the rule targets run-store artifacts.
        root = write_tree(tmp_path / "repro", {"analysis/report.py": """
            def write(path, text):
                path.write_text(text)
        """})
        assert run_lint(root, rules=["atomic-persistence"]) == []


class TestStaticCheckScript:
    def _run(self, *extra_args):
        return subprocess.run(
            [sys.executable, str(SCRIPT), *extra_args],
            capture_output=True, text=True, cwd=REPO_ROOT)

    def test_exit_zero_on_clean_tree(self, tmp_path):
        report = tmp_path / "report.json"
        proc = self._run("--json", str(report))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "OK" in proc.stdout
        assert json.loads(report.read_text())["violations"] == []

    def test_exit_nonzero_on_seeded_violation(self, tmp_path):
        root = write_tree(tmp_path / "repro", {"models/bad.py": """
            import numpy as np

            def sample():
                return np.random.default_rng().normal()
        """})
        report = tmp_path / "report.json"
        proc = self._run("--src-root", str(root),
                         "--tests-root", str(tmp_path / "missing"),
                         "--json", str(report))
        assert proc.returncode == 1
        assert "FAIL" in proc.stderr
        payload = json.loads(report.read_text())
        assert payload["violations"][0]["rule"] == "unseeded-rng"

    def test_violation_dict_round_trips(self):
        v = Violation(rule="unseeded-rng", path="x.py", line=3,
                      message="m")
        assert v.as_dict() == {"rule": "unseeded-rng", "path": "x.py",
                               "line": 3, "message": "m"}
        assert str(v) == "x.py:3: [unseeded-rng] m"
