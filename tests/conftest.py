"""Shared test fixtures.

The run store defaults to ``benchmarks/runs/`` in the working directory;
tests must never read or pollute that real cache, so the whole session is
pointed at a throwaway root.  Sharing one root across the session is
deliberate — experiment-runner tests then reuse each other's cached
training runs exactly like a real ``full_run`` invocation does.
"""

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def isolated_run_store(tmp_path_factory):
    """Point REPRO_RUNS_DIR at a session-scoped temporary directory."""
    root = tmp_path_factory.mktemp("runstore")
    previous = os.environ.get("REPRO_RUNS_DIR")
    os.environ["REPRO_RUNS_DIR"] = str(root)
    yield root
    if previous is None:
        os.environ.pop("REPRO_RUNS_DIR", None)
    else:
        os.environ["REPRO_RUNS_DIR"] = previous
