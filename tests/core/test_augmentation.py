"""Tests for the stage-2 self-augmentation module (Eqs. 9-12)."""

import numpy as np
import pytest

from repro.core import InconsistencyScorer, SelfAugmentation
from repro.nn import Tensor

RNG = np.random.default_rng(41)
DIM = 16


def make_states(batch=3, length=6, planted_outlier=None):
    """Clustered states; optionally plant an inconsistent position."""
    base = RNG.normal(size=(batch, 1, DIM))
    states = base + 0.05 * RNG.normal(size=(batch, length, DIM))
    if planted_outlier is not None:
        states[:, planted_outlier, :] = 5.0 * RNG.normal(size=(batch, DIM))
    return Tensor(states)


class TestInconsistencyScorer:
    def test_distribution_properties(self):
        scorer = InconsistencyScorer(DIM, rng=np.random.default_rng(0))
        states = make_states()
        mask = np.ones((3, 6), dtype=bool)
        r = scorer(states, mask)
        assert r.shape == (3, 6)
        np.testing.assert_allclose(r.data.sum(axis=1), np.ones(3), rtol=1e-6)
        assert (r.data >= 0).all()

    def test_masked_positions_get_zero(self):
        scorer = InconsistencyScorer(DIM, rng=np.random.default_rng(0))
        states = make_states()
        mask = np.ones((3, 6), dtype=bool)
        mask[:, :2] = False
        r = scorer(states, mask)
        assert (r.data[:, :2] < 1e-9).all()

    def test_outlier_scores_highest_similarity_inconsistency(self):
        """A planted outlier should receive the top inconsistency mass."""
        scorer = InconsistencyScorer(DIM, rng=np.random.default_rng(0))
        scorer.eval()
        hits = 0
        for trial in range(10):
            states = make_states(batch=1, planted_outlier=3)
            mask = np.ones((1, 6), dtype=bool)
            r = scorer(states, mask)
            hits += int(r.data[0].argmax() == 3)
        assert hits >= 7  # untrained Bi-LSTM adds noise; similarity dominates

    def test_select_returns_valid_positions(self):
        scorer = InconsistencyScorer(DIM, rng=np.random.default_rng(0))
        states = make_states()
        mask = np.ones((3, 6), dtype=bool)
        mask[0, :4] = False
        one_hot, positions = scorer.select(states, mask, tau=0.5)
        assert one_hot.shape == (3, 6)
        assert positions[0] >= 4  # never a padded position
        np.testing.assert_allclose(one_hot.data.sum(axis=1), np.ones(3))


class TestSelfAugmentation:
    def _run(self, length_threshold=None, training=True, length=6):
        aug = SelfAugmentation(DIM, length_threshold=length_threshold,
                               rng=np.random.default_rng(0))
        aug.train(training)
        states = make_states(batch=3, length=length)
        mask = np.ones((3, length), dtype=bool)
        mask[0, :2] = False  # row 0 has a shorter sequence
        item_table = Tensor(RNG.normal(size=(20, DIM)), requires_grad=True)
        result = aug(states, mask, item_table)
        return aug, states, mask, item_table, result

    def test_output_length_grows_by_two(self):
        _, states, mask, _, result = self._run()
        assert result.states.shape == (3, 8, DIM)
        assert result.mask.shape == (3, 8)
        # Each augmented row has exactly 2 more valid positions.
        np.testing.assert_array_equal(
            result.mask.sum(axis=1), mask.sum(axis=1) + 2)

    def test_raw_items_survive_in_order(self):
        _, states, mask, _, result = self._run()
        for b in range(3):
            raw = states.data[b][mask[b]]
            p = result.positions[b]
            new_valid = result.states.data[b][result.mask[b]]
            # Remove the two inserted rows: they are at local indices
            # (p - invalid_before) and (+2) within the valid sub-sequence.
            offset = int((~mask[b][:p]).sum())
            local = p - offset
            survivors = np.delete(new_valid, [local, local + 2], axis=0)
            np.testing.assert_allclose(survivors, raw, atol=1e-10)

    def test_inserted_items_from_table(self):
        _, _, _, item_table, result = self._run()
        for b in range(3):
            p = result.positions[b]
            left = result.states.data[b, p]
            assert result.inserted_left[b] >= 1
            np.testing.assert_allclose(
                left, item_table.data[result.inserted_left[b]], atol=1e-10)

    def test_threshold_skips_long_rows(self):
        # Row 0 has 4 valid items, rows 1-2 have 6; threshold 5 augments
        # only row 0.
        _, states, mask, _, result = self._run(length_threshold=5)
        assert result.augmented_rows[0]
        assert not result.augmented_rows[1] and not result.augmented_rows[2]
        # Non-augmented rows: same valid count, shifted right by 2.
        np.testing.assert_array_equal(result.mask[1, :2], [False, False])
        np.testing.assert_array_equal(result.mask[1, 2:],
                                      np.ones(6, dtype=bool))
        assert result.inserted_left[1] == 0  # no insertion recorded

    def test_eval_mode_is_deterministic(self):
        aug = SelfAugmentation(DIM, rng=np.random.default_rng(0))
        aug.eval()
        states = make_states(batch=2)
        mask = np.ones((2, 6), dtype=bool)
        table = Tensor(RNG.normal(size=(20, DIM)))
        r1 = aug(states, mask, table)
        r2 = aug(states, mask, table)
        np.testing.assert_array_equal(r1.positions, r2.positions)
        np.testing.assert_array_equal(r1.inserted_left, r2.inserted_left)

    def test_gradients_flow_to_item_table(self):
        _, _, _, item_table, result = self._run()
        result.states.sum().backward()
        assert item_table.grad is not None
        assert np.abs(item_table.grad).sum() > 0

    def test_gradients_flow_to_scorer(self):
        aug, _, _, _, result = self._run()
        result.states.sum().backward()
        scorer_grads = [p.grad for p in aug.scorer.parameters()
                        if p.grad is not None]
        assert any(np.abs(g).sum() > 0 for g in scorer_grads)

    def test_temperature_annealing(self):
        aug = SelfAugmentation(DIM, rng=np.random.default_rng(0))
        start = aug.temperature.tau
        for _ in range(aug.temperature.anneal_every):
            aug.on_batch_end()
        assert aug.temperature.tau < start
