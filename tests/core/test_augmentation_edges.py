"""Edge-case tests for the self-augmentation module."""

import numpy as np
import pytest

from repro.core import SelfAugmentation
from repro.nn import Tensor

RNG = np.random.default_rng(101)
DIM = 12


def run_aug(mask_rows, length_threshold=None, length=5, seed=0):
    aug = SelfAugmentation(DIM, length_threshold=length_threshold,
                           rng=np.random.default_rng(seed))
    aug.train()
    batch = len(mask_rows)
    states = Tensor(RNG.normal(size=(batch, length, DIM)))
    mask = np.array(mask_rows, dtype=bool)
    table = Tensor(RNG.normal(size=(15, DIM)))
    return aug, aug(states, mask, table), states, mask


class TestAugmentationEdges:
    def test_single_valid_position(self):
        """A one-item sequence can still be augmented (insert around it)."""
        aug, result, states, mask = run_aug(
            [[False, False, False, False, True]])
        assert result.augmented_rows[0]
        assert result.mask.sum() == 3  # item + two insertions
        assert result.positions[0] == 4

    def test_threshold_equal_to_length_not_augmented(self):
        # length 5, threshold 5 -> rows with exactly 5 items skipped
        aug, result, states, mask = run_aug([[True] * 5],
                                            length_threshold=5)
        assert not result.augmented_rows[0]
        assert result.mask.sum() == 5

    def test_threshold_one_above_length_augmented(self):
        aug, result, states, mask = run_aug([[True] * 5],
                                            length_threshold=6)
        assert result.augmented_rows[0]

    def test_mixed_batch_shapes_consistent(self):
        rows = [[True] * 5,
                [False, True, True, True, True],
                [False, False, False, True, True]]
        aug, result, states, mask = run_aug(rows, length_threshold=5)
        assert result.states.shape == (3, 7, DIM)
        # Row 0 skipped (length 5 >= 5), rows 1-2 augmented.
        np.testing.assert_array_equal(result.augmented_rows,
                                      [False, True, True])
        np.testing.assert_array_equal(result.mask.sum(axis=1), [5, 6, 4])

    def test_inserted_ids_zero_for_skipped_rows(self):
        aug, result, *_ = run_aug([[True] * 5, [False] * 3 + [True] * 2],
                                  length_threshold=3)
        assert result.inserted_left[0] == 0
        assert result.inserted_right[0] == 0

    def test_training_flag_controls_noise(self):
        """Eval mode: repeated calls agree; train mode: Gumbel noise varies
        selections across calls (with a fresh rng state each time)."""
        aug = SelfAugmentation(DIM, rng=np.random.default_rng(0))
        states = Tensor(RNG.normal(size=(4, 6, DIM)))
        mask = np.ones((4, 6), dtype=bool)
        table = Tensor(RNG.normal(size=(15, DIM)))
        aug.eval()
        a = aug(states, mask, table)
        b = aug(states, mask, table)
        np.testing.assert_array_equal(a.positions, b.positions)
        aug.train()
        positions = {tuple(aug(states, mask, table).positions)
                     for _ in range(8)}
        assert len(positions) > 1  # noise produced different selections
