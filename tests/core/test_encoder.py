"""Tests for the stage-1 global relation encoder (Eqs. 1-8)."""

import numpy as np
import pytest

from repro.core import GlobalRelationEncoder, PairConv
from repro.data import generate
from repro.graph import build_multi_relation_graph
from repro.nn import Adam, Tensor

DIM = 16


@pytest.fixture(scope="module")
def graph():
    ds = generate("beauty", seed=0, scale=0.3)
    return build_multi_relation_graph(ds)


class TestPairConv:
    def test_combination(self):
        conv = PairConv(4, rng=np.random.default_rng(0))
        conv.w_agg.data[:] = 2.0
        conv.w_self.data[:] = 3.0
        conv.bias.data[:] = 0.0
        a = Tensor(np.ones((2, 4)))
        b = Tensor(np.full((2, 4), 10.0))
        np.testing.assert_allclose(conv(a, b).data, np.full((2, 4), 32.0))

    def test_parameters_registered(self):
        conv = PairConv(4)
        assert len(conv.parameters()) == 3


class TestGlobalRelationEncoder:
    def test_output_shapes(self, graph):
        enc = GlobalRelationEncoder(graph, dim=DIM, rng=np.random.default_rng(0))
        h_v, h_u = enc()
        assert h_v.shape == (graph.num_items + 1, DIM)
        assert h_u.shape == (graph.num_users + 1, DIM)

    def test_relation_representations_differ(self, graph):
        enc = GlobalRelationEncoder(graph, dim=DIM, rng=np.random.default_rng(0))
        v_plus, v_minus, v_inter = enc.item_relation_representations()
        assert not np.allclose(v_plus.data, v_minus.data)
        assert not np.allclose(v_plus.data, v_inter.data)

    def test_gradients_reach_both_embeddings(self, graph):
        enc = GlobalRelationEncoder(graph, dim=DIM, rng=np.random.default_rng(0))
        h_v, h_u = enc()
        (h_v.sum() + h_u.sum()).backward()
        assert np.abs(enc.item_embedding.weight.grad).sum() > 0
        assert np.abs(enc.user_embedding.weight.grad).sum() > 0

    def test_user_item_cross_talk(self, graph):
        """Interacted relations must propagate user info into item reps."""
        enc = GlobalRelationEncoder(graph, dim=DIM, rng=np.random.default_rng(0))
        h_v, _ = enc()
        h_v.sum().backward()
        # A gradient on user embeddings via h_v proves Eq. 5 propagation.
        assert np.abs(enc.user_embedding.weight.grad).sum() > 0

    def test_isolated_node_keeps_identity(self, graph):
        """With zero-degree relations the residual keeps ids distinct."""
        enc = GlobalRelationEncoder(graph, dim=DIM, rng=np.random.default_rng(0))
        h_v, _ = enc()
        # padding row (0) has no relations and zero embedding -> output is
        # whatever fusion bias produces, but real items must not collapse.
        norms = np.linalg.norm(h_v.data[1:], axis=1)
        assert (norms > 0).all()

    def test_training_changes_outputs(self, graph):
        enc = GlobalRelationEncoder(graph, dim=DIM, rng=np.random.default_rng(0))
        before = enc()[0].data.copy()
        opt = Adam(enc.parameters(), lr=0.05)
        h_v, h_u = enc()
        ((h_v * h_v).sum() + (h_u * h_u).sum()).backward()
        opt.step()
        after = enc()[0].data
        assert not np.allclose(before, after)
