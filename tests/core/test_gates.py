"""Tests for the pluggable stage-3 gates (Eq. 14 f_den choices)."""

import numpy as np
import pytest

from repro.core import GATES, SSDRec, SSDRecConfig, SparseAttentionGate, ThresholdGate
from repro.core.hierarchical import HierarchicalDenoising
from repro.data import generate
from repro.data.batching import pad_sequences
from repro.nn import Tensor

RNG = np.random.default_rng(71)
DIM = 16


def make_inputs(batch=3, length=6):
    states = Tensor(RNG.normal(size=(batch, length, DIM)))
    mask = np.ones((batch, length), dtype=bool)
    mask[0, :2] = False
    return states, mask


class TestRegistry:
    def test_contains_paper_default(self):
        assert "hsd" in GATES
        assert "sparse-attention" in GATES and "threshold" in GATES

    def test_unknown_gate_rejected(self):
        with pytest.raises(KeyError):
            HierarchicalDenoising(DIM, gate="bogus")


@pytest.mark.parametrize("gate_cls", [SparseAttentionGate, ThresholdGate])
class TestGateContracts:
    def test_binary_output_respects_mask(self, gate_cls):
        gate = gate_cls(DIM, rng=np.random.default_rng(0))
        states, mask = make_inputs()
        keep = gate(states, mask)
        vals = keep.data
        assert ((vals == 0) | (vals == 1)).all()
        assert (vals[~mask] == 0).all()

    def test_guidance_accepted(self, gate_cls):
        gate = gate_cls(DIM, rng=np.random.default_rng(0))
        gate.eval()
        states, mask = make_inputs()
        guidance = Tensor(RNG.normal(size=(3, 8, DIM)))
        keep = gate(states, mask, guidance=guidance)
        assert keep.shape == mask.shape

    def test_gradients_flow(self, gate_cls):
        gate = gate_cls(DIM, rng=np.random.default_rng(0))
        states = Tensor(RNG.normal(size=(2, 5, DIM)), requires_grad=True)
        mask = np.ones((2, 5), dtype=bool)
        (gate(states, mask) * Tensor(RNG.normal(size=(2, 5)))).sum().backward()
        assert states.grad is not None
        assert np.abs(states.grad).sum() > 0

    def test_has_anneal_hook(self, gate_cls):
        gate = gate_cls(DIM)
        start = gate.temperature.tau
        for _ in range(gate.temperature.anneal_every):
            gate.on_batch_end()
        assert gate.temperature.tau < start


class TestSparseAttentionGate:
    def test_drops_some_items_usually(self):
        gate = SparseAttentionGate(DIM, rng=np.random.default_rng(0))
        gate.eval()
        dropped = 0
        for seed in range(5):
            rng = np.random.default_rng(seed)
            states = Tensor(rng.normal(size=(1, 8, DIM)) * 2)
            mask = np.ones((1, 8), dtype=bool)
            keep = gate(states, mask)
            dropped += int((keep.data[0] == 0).sum())
        assert dropped > 0  # sparsemax produced zeros somewhere


class TestSSDRecWithAlternativeGates:
    @pytest.mark.parametrize("gate", ["sparse-attention", "threshold"])
    def test_trains_end_to_end(self, gate):
        from repro.data import leave_one_out_split
        from repro.data.batching import DataLoader
        ds = generate("beauty", seed=0, scale=0.25)
        split = leave_one_out_split(ds, max_len=8)
        model = SSDRec(ds, config=SSDRecConfig(dim=DIM, max_len=8,
                                               denoise_gate=gate),
                       rng=np.random.default_rng(0))
        batch = next(iter(DataLoader(split.train, batch_size=8, max_len=8)))
        loss = model.loss(batch)
        assert np.isfinite(loss.item())
        loss.backward()
        model.on_batch_end()

    def test_keep_mask_contract(self):
        ds = generate("beauty", seed=0, scale=0.25)
        model = SSDRec(ds, config=SSDRecConfig(dim=DIM, max_len=8,
                                               denoise_gate="sparse-attention"),
                       rng=np.random.default_rng(0))
        items, mask, _ = pad_sequences([ds.sequences[1][:6]], max_len=8)
        keep = model.keep_mask(items, mask)
        assert not (keep & ~mask).any()
        assert keep.any()
