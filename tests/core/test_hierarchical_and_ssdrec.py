"""Tests for stage 3 (hierarchical denoising) and the full SSDRec model."""

import numpy as np
import pytest

from repro.core import (HierarchicalDenoising, SSDRec, SSDRecConfig,
                        SelfAugmentation)
from repro.data import generate, leave_one_out_split
from repro.data.batching import Batch, DataLoader, pad_sequences
from repro.models import BACKBONES, GRU4Rec, SASRec
from repro.nn import Adam, Tensor

RNG = np.random.default_rng(51)
DIM = 16
MAX_LEN = 10


@pytest.fixture(scope="module")
def dataset():
    return generate("beauty", seed=0, scale=0.3)


@pytest.fixture(scope="module")
def split(dataset):
    return leave_one_out_split(dataset, max_len=MAX_LEN)


def small_config(**overrides):
    defaults = dict(dim=DIM, max_len=MAX_LEN)
    defaults.update(overrides)
    return SSDRecConfig(**defaults)


def one_batch(split, size=8):
    loader = DataLoader(split.train, batch_size=size, max_len=MAX_LEN, seed=0)
    return next(iter(loader))


class TestHierarchicalDenoising:
    def _states(self, batch=3, length=6):
        states = Tensor(RNG.normal(size=(batch, length, DIM)))
        mask = np.ones((batch, length), dtype=bool)
        mask[0, :2] = False
        return states, mask

    def test_refine_drops_positions(self):
        hdm = HierarchicalDenoising(DIM, rounds=2, rng=np.random.default_rng(0))
        states, mask = self._states()
        refined, refined_mask = hdm.refine_augmented(states, mask)
        # Two rounds drop exactly two positions per row (enough items left).
        np.testing.assert_array_equal(refined_mask.sum(axis=1),
                                      mask.sum(axis=1) - 2)
        # Dropped positions are zeroed in the representation.
        dropped = mask & ~refined_mask
        assert np.abs(refined.data[dropped]).max() < 1e-12

    def test_rounds_stop_at_two_items(self):
        hdm = HierarchicalDenoising(DIM, rounds=10, rng=np.random.default_rng(0))
        states, mask = self._states(length=4)
        _, refined_mask = hdm.refine_augmented(states, mask)
        assert refined_mask.sum(axis=1).min() >= 2

    def test_forward_without_augmentation(self):
        hdm = HierarchicalDenoising(DIM, rng=np.random.default_rng(0))
        states, mask = self._states()
        result = hdm(states, mask)
        assert result.states.shape == states.shape
        assert result.mask.shape == mask.shape
        assert not (result.mask & ~mask).any()  # never keeps padding

    def test_forward_with_augmentation_uses_guidance(self):
        hdm = HierarchicalDenoising(DIM, rng=np.random.default_rng(0))
        hdm.eval()
        states, mask = self._states()
        aug_states = Tensor(RNG.normal(size=(3, 8, DIM)))
        aug_mask = np.ones((3, 8), dtype=bool)
        with_aug = hdm(states, mask, aug_states, aug_mask)
        without = hdm(states, mask)
        # Guidance changes the interest signal, hence possibly decisions;
        # at minimum the refined states differ.
        assert with_aug.refined_states.shape == (3, 8, DIM)
        assert without.refined_states.shape == states.shape

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            HierarchicalDenoising(DIM, rounds=-1)


class TestSSDRecConstruction:
    def test_all_stage_toggles(self, dataset):
        for s1 in (True, False):
            for s2 in (True, False):
                for s3 in (True, False):
                    model = SSDRec(dataset, backbone_cls=GRU4Rec,
                                   config=small_config(use_stage1=s1,
                                                       use_stage2=s2,
                                                       use_stage3=s3),
                                   rng=np.random.default_rng(0))
                    assert (model.encoder is not None) == s1
                    assert (model.augmentation is not None) == s2
                    assert (model.denoising is not None) == s3

    def test_tau_propagates_to_all_schedules(self, dataset):
        model = SSDRec(dataset, config=small_config(initial_tau=7.0),
                       rng=np.random.default_rng(0))
        for module in (model.augmentation, model.denoising):
            for sched in model._schedules_of(module):
                assert sched.tau == 7.0

    def test_prebuilt_graph_reused(self, dataset):
        from repro.graph import build_multi_relation_graph
        graph = build_multi_relation_graph(dataset)
        model = SSDRec(dataset, graph=graph, config=small_config(),
                       rng=np.random.default_rng(0))
        assert model.encoder is not None


@pytest.mark.parametrize("backbone", ["GRU4Rec", "SASRec", "BERT4Rec"])
class TestSSDRecWithBackbones:
    def test_forward_loss_backward(self, dataset, split, backbone):
        model = SSDRec(dataset, backbone_cls=BACKBONES[backbone],
                       config=small_config(), rng=np.random.default_rng(0))
        batch = one_batch(split)
        logits = model.forward_batch(batch)
        assert logits.shape[0] == batch.batch_size
        assert np.isfinite(logits.data[:, 1:dataset.num_items + 1]).all()
        loss = model.loss(batch)
        assert np.isfinite(loss.item())
        loss.backward()
        assert np.abs(model.item_embedding.weight.grad).sum() > 0

    def test_one_step_reduces_loss(self, dataset, split, backbone):
        model = SSDRec(dataset, backbone_cls=BACKBONES[backbone],
                       config=small_config(), rng=np.random.default_rng(0))
        model.eval()  # deterministic selections + no dropout
        batch = one_batch(split)
        opt = Adam(model.parameters(), lr=0.005)
        first = model.loss(batch)
        first.backward()
        opt.step()
        second = model.loss(batch)
        assert second.item() < first.item() + 1e-6


class TestSSDRecBehaviour:
    def test_augmentation_only_during_training(self, dataset, split):
        """Sec. III-F: stage 2 must not run at evaluation time."""
        model = SSDRec(dataset, config=small_config(),
                       rng=np.random.default_rng(0))
        batch = one_batch(split, size=4)
        model.eval()
        _, final_mask, _, _, aug_info = model._pipeline(
            batch.items, batch.mask, batch.users, training=False)
        assert aug_info is None
        assert final_mask.shape == batch.mask.shape
        model.train()
        _, final_mask_t, _, _, aug_info_t = model._pipeline(
            batch.items, batch.mask, batch.users, training=True)
        assert aug_info_t is not None

    def test_stage2_disabled_pipeline(self, dataset, split):
        model = SSDRec(dataset, config=small_config(use_stage2=False),
                       rng=np.random.default_rng(0))
        batch = one_batch(split, size=4)
        loss = model.loss(batch)
        assert np.isfinite(loss.item())

    def test_keep_mask_subset_of_valid(self, dataset):
        model = SSDRec(dataset, config=small_config(),
                       rng=np.random.default_rng(0))
        items, mask, _ = pad_sequences(
            [dataset.sequences[1], dataset.sequences[2]], max_len=MAX_LEN)
        keep = model.keep_mask(items, mask)
        assert not (keep & ~mask).any()
        assert keep.any(axis=1).all()  # never empty

    def test_explain_trace(self, dataset):
        model = SSDRec(dataset, config=small_config(),
                       rng=np.random.default_rng(0))
        seq = dataset.sequences[3]
        trace = model.explain(seq, user=3, target=seq[-1])
        assert "raw_score" in trace and "denoised_score" in trace
        assert "inserted_items" in trace and len(trace["inserted_items"]) == 2
        assert set(trace["removed_items"]) <= set(trace["raw_sequence"])

    def test_dropped_ratio_interface(self, dataset):
        model = SSDRec(dataset, config=small_config(),
                       rng=np.random.default_rng(0))
        ratio = model.dropped_ratio([dataset.sequences[1],
                                     dataset.sequences[2]])
        assert 0.0 <= ratio < 1.0

    def test_on_batch_end_anneals_everything(self, dataset):
        model = SSDRec(dataset, config=small_config(anneal_every=1,
                                                    anneal_rate=0.5),
                       rng=np.random.default_rng(0))
        model.on_batch_end()
        for module in (model.augmentation, model.denoising):
            for sched in model._schedules_of(module):
                assert sched.tau == 0.5


class TestSSDRecTrainsEndToEnd:
    def test_two_epoch_training(self, dataset, split):
        from repro.train import TrainConfig, Trainer
        model = SSDRec(dataset, backbone_cls=GRU4Rec,
                       config=small_config(), rng=np.random.default_rng(0))
        result = Trainer(model, split,
                         TrainConfig(epochs=2, batch_size=32, seed=0)).fit()
        assert result.epochs_run == 2
        assert np.isfinite(result.history[-1]["loss"])
