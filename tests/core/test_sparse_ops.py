"""Tests for autograd-aware sparse operations."""

import numpy as np
import pytest
from scipy import sparse

from repro.core import row_normalize, sparse_matmul, symmetric_normalize
from repro.nn import Tensor

RNG = np.random.default_rng(31)


class TestSparseMatmul:
    def test_value(self):
        A = sparse.random(5, 4, density=0.5, random_state=0, format="csr")
        X = Tensor(RNG.normal(size=(4, 3)))
        out = sparse_matmul(A, X)
        np.testing.assert_allclose(out.data, A.toarray() @ X.data)

    def test_gradient(self):
        A = sparse.random(5, 4, density=0.5, random_state=0, format="csr")
        X = Tensor(RNG.normal(size=(4, 3)), requires_grad=True)
        weights = RNG.normal(size=(5, 3))
        (sparse_matmul(A, X) * Tensor(weights)).sum().backward()
        np.testing.assert_allclose(X.grad, A.toarray().T @ weights, atol=1e-12)

    def test_shape_mismatch(self):
        A = sparse.identity(3, format="csr")
        with pytest.raises(ValueError):
            sparse_matmul(A, Tensor(np.zeros((4, 2))))


class TestNormalization:
    def test_row_normalize_sums(self):
        A = sparse.csr_matrix(np.array([[1.0, 3.0], [0.0, 0.0]]))
        out = row_normalize(A)
        np.testing.assert_allclose(out.toarray(), [[0.25, 0.75], [0, 0]])

    def test_row_normalize_negative_weights(self):
        A = sparse.csr_matrix(np.array([[-1.0, 1.0]]))
        out = row_normalize(A).toarray()
        np.testing.assert_allclose(np.abs(out).sum(), 1.0)

    def test_symmetric_normalize(self):
        A = sparse.csr_matrix(np.array([[0.0, 2.0], [2.0, 0.0]]))
        out = symmetric_normalize(A).toarray()
        np.testing.assert_allclose(out, [[0, 1], [1, 0]])
