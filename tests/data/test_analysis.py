"""Tests for the analysis utilities."""

import numpy as np
import pytest

from repro.analysis import (compare_datasets, gini_coefficient,
                            graph_report, length_histogram, noise_report,
                            popularity_report, short_sequence_fraction)
from repro.data import InteractionDataset, generate
from repro.graph import build_multi_relation_graph


def make_dataset(sequences, num_items=None):
    num_items = num_items or max(max(s) for s in sequences if s)
    return InteractionDataset(
        name="toy", num_users=len(sequences), num_items=num_items,
        sequences=[[]] + [list(s) for s in sequences])


class TestHistograms:
    def test_length_histogram_buckets(self):
        ds = make_dataset([[1] * 3, [1] * 7, [1] * 15, [1] * 300])
        hist = length_histogram(ds, bins=(5, 10, 20))
        assert hist["(0,5]"] == 1
        assert hist["(5,10]"] == 1
        assert hist["(10,20]"] == 1
        assert hist[">20"] == 1

    def test_short_fraction(self):
        ds = make_dataset([[1] * 5, [1] * 50])
        np.testing.assert_allclose(short_sequence_fraction(ds, 10), 0.5)


class TestGini:
    def test_equal_distribution(self):
        np.testing.assert_allclose(gini_coefficient([1, 1, 1, 1]), 0.0)

    def test_concentrated_distribution(self):
        g = gini_coefficient([0] * 99 + [100])
        assert g > 0.95

    def test_known_value(self):
        # For [1, 3]: G = (2*1-3)*1 + (4-3)*3 / (2*4) = 2/8 = 0.25
        np.testing.assert_allclose(gini_coefficient([1, 3]), 0.25)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient([-1, 2])


class TestPopularity:
    def test_head_share(self):
        # 10 items; item 1 gets 91 of 100 interactions.
        seqs = [[1] * 91 + list(range(2, 11))]
        ds = make_dataset(seqs, num_items=10)
        report = popularity_report(ds, head_fraction=0.1)
        np.testing.assert_allclose(report["head_interaction_share"], 0.91)
        assert report["gini"] > 0.5


class TestNoiseReport:
    def test_synthetic_flags(self):
        ds = generate("beauty", seed=0, scale=0.25, noise_rate=0.2)
        report = noise_report(ds)
        assert 0.1 < report["noise_rate"] < 0.3
        assert report["users_with_noise"] > 0

    def test_missing_flags(self):
        ds = make_dataset([[1, 2]])
        with pytest.raises(KeyError):
            noise_report(ds)


class TestGraphReport:
    def test_connectivity_summary(self):
        ds = generate("beauty", seed=0, scale=0.25)
        graph = build_multi_relation_graph(ds)
        report = graph_report(graph)
        assert report.relation_counts["transitional"] > 0
        assert report.mean_degrees["transitional"] > 0
        assert 0 < report.largest_component_fraction <= 1.0


class TestCompare:
    def test_rows_per_dataset(self):
        datasets = {name: generate(name, seed=0, scale=0.25)
                    for name in ("beauty", "ml-100k")}
        rows = compare_datasets(datasets)
        assert len(rows) == 2
        for _, stats in rows:
            assert "pop_gini" in stats and "short_frac(<=10)" in stats
        # ML-100K-like data has far fewer short sequences than Beauty-like.
        by_name = dict(rows)
        assert by_name["beauty"]["short_frac(<=10)"] > \
            by_name["ml-100k"]["short_frac(<=10)"]
