"""Tests for dataset containers, splitting, and preprocessing."""

import numpy as np
import pytest

from repro.data import (InteractionDataset, SequenceExample, k_core_filter,
                        leave_one_out_split, popularity_split, remap_ids)


def make_dataset(sequences, num_items=None):
    num_items = num_items or max((max(s) for s in sequences if s), default=0)
    return InteractionDataset(
        name="toy", num_users=len(sequences), num_items=num_items,
        sequences=[[]] + [list(s) for s in sequences])


class TestInteractionDataset:
    def test_statistics(self):
        ds = make_dataset([[1, 2, 3], [2, 3], [1]], num_items=3)
        stats = ds.statistics()
        assert stats["users"] == 3
        assert stats["items"] == 3
        assert stats["actions"] == 6
        np.testing.assert_allclose(stats["avg_len"], 2.0)

    def test_sparsity(self):
        ds = make_dataset([[1, 1, 2], [3]], num_items=3)
        # distinct pairs: u1->{1,2}, u2->{3} = 3 of 6
        np.testing.assert_allclose(ds.sparsity, 0.5)

    def test_interaction_matrix_counts_repeats(self):
        ds = make_dataset([[1, 1, 2]], num_items=2)
        A = ds.interaction_matrix().toarray()
        assert A[1, 1] == 2 and A[1, 2] == 1
        assert A.shape == (2, 3)

    def test_item_popularity(self):
        ds = make_dataset([[1, 2], [2, 3], [2]], num_items=3)
        np.testing.assert_array_equal(ds.item_popularity(), [0, 1, 3, 1])

    def test_out_of_range_item_rejected(self):
        with pytest.raises(ValueError):
            make_dataset([[1, 9]], num_items=3)

    def test_wrong_sequence_count_rejected(self):
        with pytest.raises(ValueError):
            InteractionDataset("bad", num_users=2, num_items=3,
                               sequences=[[1, 2]])


class TestLeaveOneOut:
    def test_basic_split(self):
        ds = make_dataset([[1, 2, 3, 4, 5]], num_items=5)
        split = leave_one_out_split(ds, max_len=10)
        assert split.test[0].target == 5
        assert split.test[0].sequence == [1, 2, 3, 4]
        assert split.valid[0].target == 4
        assert split.valid[0].sequence == [1, 2, 3]
        assert split.train[0].target == 3
        assert split.train[0].sequence == [1, 2]

    def test_short_sequences_skipped(self):
        ds = make_dataset([[1, 2], [1, 2, 3]], num_items=3)
        split = leave_one_out_split(ds)
        assert len(split.test) == 1

    def test_truncation_keeps_recent(self):
        ds = make_dataset([list(range(1, 11))], num_items=10)
        split = leave_one_out_split(ds, max_len=3)
        assert split.test[0].sequence == [7, 8, 9]
        assert split.test[0].target == 10

    def test_prefix_augmentation(self):
        ds = make_dataset([[1, 2, 3, 4, 5, 6]], num_items=6)
        plain = leave_one_out_split(ds, augment_prefixes=False)
        aug = leave_one_out_split(ds, augment_prefixes=True)
        assert len(aug.train) > len(plain.train)
        # Every augmented example predicts the item right after its prefix.
        for ex in aug.train:
            full = ds.sequences[ex.user]
            k = len(ex.sequence)
            assert full[k] == ex.target

    def test_invalid_max_len(self):
        ds = make_dataset([[1, 2, 3]], num_items=3)
        with pytest.raises(ValueError):
            leave_one_out_split(ds, max_len=0)


class TestKCore:
    def test_drops_infrequent_items_and_short_seqs(self):
        # item 9 appears once -> dropped; user 2's sequence then too short.
        seqs = [[1, 2, 3, 1, 2], [9, 1, 2], [1, 2, 3, 2, 1, 3]]
        ds = make_dataset(seqs, num_items=9)
        out = k_core_filter(ds, min_seq_len=3, min_item_freq=3)
        assert out.num_items <= 3
        for seq in out.sequences[1:]:
            assert len(seq) >= 3

    def test_ids_remapped_contiguously(self):
        seqs = [[5, 7, 5, 7, 5], [7, 5, 7, 5, 7]]
        ds = make_dataset(seqs, num_items=7)
        out = k_core_filter(ds, min_seq_len=2, min_item_freq=2)
        assert out.num_items == 2
        used = {i for s in out.sequences for i in s}
        assert used == {1, 2}

    def test_fixed_point(self):
        """k-core output passed through k-core again is unchanged."""
        seqs = [[1, 2, 3, 1, 2, 3], [2, 3, 1, 2, 3, 1], [3, 1, 2, 3, 1, 2]]
        ds = make_dataset(seqs)
        once = k_core_filter(ds, min_seq_len=3, min_item_freq=3)
        twice = k_core_filter(once, min_seq_len=3, min_item_freq=3)
        assert once.sequences == twice.sequences


class TestPopularitySplit:
    def test_head_tail_partition(self):
        ds = make_dataset([[1, 1, 1, 2, 2, 3, 4, 5]], num_items=5)
        head, tail = popularity_split(ds, head_fraction=0.2)
        assert list(head) == [1]
        assert set(tail) == {2, 3, 4, 5}

    def test_invalid_fraction(self):
        ds = make_dataset([[1]], num_items=1)
        with pytest.raises(ValueError):
            popularity_split(ds, head_fraction=0.0)


class TestRemap:
    def test_empty_sequences_dropped(self):
        out = remap_ids("x", {3: [10, 20], 5: []})
        assert out.num_users == 1
        assert out.sequences[1] == [1, 2]
