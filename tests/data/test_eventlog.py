"""EventLog: append-only segments, digest-chained manifest, crash
semantics at the segment/manifest fault sites, and replay into the mmap
store.  Also covers the ingest scratch-cleanup hardening this log rides
on (``ingest.cleanup`` / ``ingest.pass-barrier``)."""

import json

import numpy as np
import pytest

from repro.data import (EventLogIntegrityError, open_event_log,
                        open_store, replay_to_store)
from repro.data.eventlog import (EVENTLOG_MANIFEST_SITE,
                                 EVENTLOG_SEGMENT_SITE, GENESIS)
from repro.data.loaders import (INGEST_BARRIER_SITE, INGEST_CLEANUP_SITE,
                                ingest_events_to_store)
from repro.resilience import Fault, FaultInjected, FaultPlan, SimulatedCrash


def fill(log, *batches):
    for users, items in batches:
        log.append(users, items)
    return log


class TestAppendAndRead:
    def test_events_replay_in_append_order(self, tmp_path):
        log = open_event_log(tmp_path / "log")
        log.append([1, 2], [10, 20], timestamps=[5, 6])
        log.append([1], [30])
        assert log.num_segments == 2 and log.num_events == 3
        assert list(log.events()) == [(1, 10, 5), (2, 20, 6), (1, 30, 2)]

    def test_default_timestamps_continue_event_counter(self, tmp_path):
        log = fill(open_event_log(tmp_path / "log"),
                   ([1, 1], [2, 3]), ([2], [4]))
        stamps = [ts for _, _, ts in log.events()]
        assert stamps == [0, 1, 2]

    def test_reopen_sees_identical_stream(self, tmp_path):
        log = fill(open_event_log(tmp_path / "log"), ([1, 2], [3, 4]))
        reopened = open_event_log(tmp_path / "log")
        assert reopened.chain_head == log.chain_head
        assert list(reopened.events()) == list(log.events())
        reopened.append([5], [6])
        assert reopened.num_events == 3

    def test_rejects_malformed_appends(self, tmp_path):
        log = open_event_log(tmp_path / "log")
        with pytest.raises(ValueError):
            log.append([], [])
        with pytest.raises(ValueError):
            log.append([1, 2], [3])
        with pytest.raises(ValueError):
            log.append([0], [3])                    # ids are 1-based
        with pytest.raises(ValueError):
            log.append([1], [2], timestamps=[7, 8])
        assert log.num_segments == 0


class TestDigestChain:
    def test_head_commits_to_full_history(self, tmp_path):
        a = fill(open_event_log(tmp_path / "a"),
                 ([1, 2], [3, 4]), ([5], [6]))
        b = fill(open_event_log(tmp_path / "b"),
                 ([1, 2], [3, 4]), ([5], [6]))
        c = fill(open_event_log(tmp_path / "c"),
                 ([1, 2], [3, 4]), ([5], [7]))     # one item differs
        assert a.chain_head == b.chain_head != GENESIS
        assert c.chain_head != a.chain_head
        assert open_event_log(tmp_path / "a").verify() == 3

    def test_tampered_segment_detected(self, tmp_path):
        log = fill(open_event_log(tmp_path / "log"), ([1], [2]))
        segment = tmp_path / "log" / "segment-000000.npy"
        raw = segment.read_bytes()
        segment.write_bytes(raw[:-1] + bytes([raw[-1] ^ 0xFF]))
        with pytest.raises(EventLogIntegrityError, match="digest mismatch"):
            log.verify()
        with pytest.raises(EventLogIntegrityError, match="digest mismatch"):
            log.read_segment(0)

    def test_tampered_manifest_chain_detected_on_open(self, tmp_path):
        fill(open_event_log(tmp_path / "log"), ([1], [2]), ([3], [4]))
        manifest_path = tmp_path / "log" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["segments"][0]["chain"] = "f" * 64
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(EventLogIntegrityError, match="chain"):
            open_event_log(tmp_path / "log")

    def test_missing_segment_detected(self, tmp_path):
        log = fill(open_event_log(tmp_path / "log"), ([1], [2]))
        (tmp_path / "log" / "segment-000000.npy").unlink()
        with pytest.raises(EventLogIntegrityError, match="missing"):
            log.read_segment(0)


class TestTail:
    def test_cursor_sees_only_new_segments(self, tmp_path):
        log = fill(open_event_log(tmp_path / "log"), ([1], [2]))
        cursor, batches = log.tail(0)
        assert cursor == 1 and len(batches) == 1
        log.append([3, 4], [5, 6])
        cursor, batches = log.tail(cursor)
        assert cursor == 2 and len(batches) == 1
        np.testing.assert_array_equal(batches[0][0], [3, 4])
        assert log.tail(cursor) == (2, [])

    def test_tail_picks_up_concurrent_appends(self, tmp_path):
        reader = open_event_log(tmp_path / "log")
        writer = open_event_log(tmp_path / "log")
        writer.append([1], [2])
        cursor, batches = reader.tail(0)            # refresh() reloads
        assert cursor == 1 and len(batches) == 1


class TestCrashSemantics:
    def test_kill_before_manifest_leaves_log_at_previous_state(
            self, tmp_path):
        log = fill(open_event_log(tmp_path / "log"), ([1], [2]))
        head = log.chain_head
        with FaultPlan([Fault(site=EVENTLOG_MANIFEST_SITE + ".before",
                              action="kill")]):
            with pytest.raises(SimulatedCrash):
                log.append([3], [4])
        reopened = open_event_log(tmp_path / "log")
        assert reopened.chain_head == head
        assert reopened.num_events == 1
        # The orphan segment the crash left behind is simply overwritten.
        reopened.append([5], [6])
        assert reopened.verify() == 2
        assert list(reopened.events())[-1][:2] == (5, 6)

    def test_corrupted_segment_write_caught_by_verify(self, tmp_path):
        log = open_event_log(tmp_path / "log")
        with FaultPlan([Fault(site=EVENTLOG_SEGMENT_SITE,
                              action="corrupt")]):
            log.append([1], [2])
        with pytest.raises(EventLogIntegrityError, match="digest mismatch"):
            log.verify()

    def test_write_failure_does_not_advance_the_log(self, tmp_path):
        log = fill(open_event_log(tmp_path / "log"), ([1], [2]))
        with FaultPlan([Fault(site=EVENTLOG_SEGMENT_SITE + ".before",
                              action="raise")]):
            with pytest.raises(FaultInjected):
                log.append([3], [4])
        assert open_event_log(tmp_path / "log").num_events == 1


class TestReplay:
    def test_replay_materializes_sequences_and_chain_head(self, tmp_path):
        log = fill(open_event_log(tmp_path / "log"),
                   ([1, 2, 1], [10, 20, 11]), ([2, 3], [21, 30]))
        store = replay_to_store(log, tmp_path / "store", "replayed")
        # Ingest assigns dense ids in first-appearance order:
        # items 10->1, 20->2, 11->3, 21->4, 30->5.
        np.testing.assert_array_equal(store.sequence(1), [1, 3])
        np.testing.assert_array_equal(store.sequence(2), [2, 4])
        assert store.metadata["eventlog_chain_head"] == log.chain_head
        assert store.metadata["eventlog_segments"] == 2
        reopened = open_store(tmp_path / "store")
        assert reopened.num_interactions == 5


class TestIngestScratchCleanup:
    EVENTS = [(1, 10, 0), (1, 11, 1), (2, 20, 2), (2, 21, 3), (3, 30, 4)]

    def test_cleanup_failure_does_not_break_retry(self, tmp_path):
        """A raise at the cleanup site surfaces, but a retry starts from
        a clean slate (start-of-run scratch sweep) and succeeds."""
        with FaultPlan([Fault(site=INGEST_CLEANUP_SITE, action="raise")]):
            with pytest.raises(FaultInjected):
                ingest_events_to_store(self.EVENTS, tmp_path / "s",
                                       "ingested")
        store = ingest_events_to_store(self.EVENTS, tmp_path / "s",
                                       "ingested")
        clean = ingest_events_to_store(self.EVENTS, tmp_path / "clean",
                                       "ingested")
        for user in (1, 2, 3):
            np.testing.assert_array_equal(store.sequence(user),
                                          clean.sequence(user))
        assert not (tmp_path / "s" / "_ingest").exists()

    def test_crash_at_pass_barrier_leaves_retryable_state(self, tmp_path):
        """A hard crash between the two passes leaves scratch behind;
        the next run sweeps it and produces the same store bytes as an
        uninterrupted ingest."""
        with FaultPlan([Fault(site=INGEST_BARRIER_SITE, action="kill")]):
            with pytest.raises(SimulatedCrash):
                ingest_events_to_store(self.EVENTS, tmp_path / "s",
                                       "ingested")
        store = ingest_events_to_store(self.EVENTS, tmp_path / "s",
                                       "ingested")
        clean = ingest_events_to_store(self.EVENTS, tmp_path / "clean",
                                       "ingested")
        for user in (1, 2, 3):
            np.testing.assert_array_equal(store.sequence(user),
                                          clean.sequence(user))
        assert not (tmp_path / "s" / "_ingest").exists()
