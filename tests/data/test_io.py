"""Tests for dataset serialization."""

import numpy as np
import pytest

from repro.data import generate
from repro.data.io import load_dataset, save_dataset


class TestDatasetIO:
    def test_roundtrip_sequences(self, tmp_path):
        ds = generate("beauty", seed=0, scale=0.25)
        path = save_dataset(ds, tmp_path / "beauty.npz")
        loaded = load_dataset(path)
        assert loaded.sequences == ds.sequences
        assert loaded.name == ds.name
        assert loaded.num_users == ds.num_users
        assert loaded.num_items == ds.num_items

    def test_metadata_survives(self, tmp_path):
        ds = generate("beauty", seed=3, scale=0.25)
        loaded = load_dataset(save_dataset(ds, tmp_path / "d.npz"))
        assert loaded.metadata["seed"] == 3
        assert loaded.metadata["profile"] == "beauty"
        # noise flags (list of bool lists) survive the JSON round trip
        orig_flags = ds.metadata["noise_flags"]
        assert loaded.metadata["noise_flags"][1] == list(orig_flags[1])

    def test_statistics_identical(self, tmp_path):
        ds = generate("yelp", seed=0, scale=0.25)
        loaded = load_dataset(save_dataset(ds, tmp_path / "y.npz"))
        assert loaded.statistics() == ds.statistics()

    def test_numpy_metadata_converted(self, tmp_path):
        ds = generate("beauty", seed=0, scale=0.25)
        ds.metadata["np_int"] = np.int64(7)
        ds.metadata["np_arr"] = np.array([1.5, 2.5])
        loaded = load_dataset(save_dataset(ds, tmp_path / "m.npz"))
        assert loaded.metadata["np_int"] == 7
        assert loaded.metadata["np_arr"] == [1.5, 2.5]

    def test_creates_parent_dirs(self, tmp_path):
        ds = generate("beauty", seed=0, scale=0.25)
        path = save_dataset(ds, tmp_path / "nested" / "dir" / "d.npz")
        assert path.exists()
