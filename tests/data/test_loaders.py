"""Tests for the Amazon CSV and Yelp JSON loaders."""

import json

import pytest

from repro.data.loaders import load_amazon_csv, load_yelp_json


@pytest.fixture
def amazon_csv(tmp_path):
    rows = [
        ("A1", "B001", 5.0, 100), ("A1", "B002", 4.0, 200),
        ("A2", "B001", 2.0, 150), ("A2", "B003", 5.0, 50),
    ]
    path = tmp_path / "ratings.csv"
    path.write_text("\n".join(",".join(map(str, r)) for r in rows) + "\n")
    return path


@pytest.fixture
def yelp_json(tmp_path):
    rows = [
        {"user_id": "u1", "business_id": "b1", "stars": 5.0,
         "date": "2019-06-01"},
        {"user_id": "u1", "business_id": "b2", "stars": 4.0,
         "date": "2019-07-01"},
        {"user_id": "u1", "business_id": "b3", "stars": 3.0,
         "date": "2018-01-01"},  # before the cutoff
        {"user_id": "u2", "business_id": "b1", "stars": 1.0,
         "date": "2020-01-01"},
    ]
    path = tmp_path / "review.json"
    path.write_text("\n".join(json.dumps(r) for r in rows) + "\n")
    return path


class TestAmazon:
    def test_string_ids_remapped(self, amazon_csv):
        ds = load_amazon_csv(amazon_csv, apply_k_core=False)
        assert ds.num_users == 2 and ds.num_items == 3
        # A2's items sorted by timestamp: B003 (50) before B001 (150).
        assert len(ds.sequences[2]) == 2

    def test_temporal_order(self, amazon_csv):
        ds = load_amazon_csv(amazon_csv, apply_k_core=False)
        # user A1: B001 (ts 100) then B002 (ts 200)
        seq = ds.sequences[1]
        assert len(seq) == 2

    def test_min_rating(self, amazon_csv):
        ds = load_amazon_csv(amazon_csv, min_rating=4.0, apply_k_core=False)
        assert ds.num_interactions == 3  # the 2.0 rating dropped

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_amazon_csv(tmp_path / "nope.csv")

    def test_malformed(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n")
        with pytest.raises(ValueError):
            load_amazon_csv(path)


class TestYelp:
    def test_date_cutoff(self, yelp_json):
        ds = load_yelp_json(yelp_json, apply_k_core=False)
        # The 2018 review is dropped -> 3 interactions remain.
        assert ds.num_interactions == 3

    def test_custom_cutoff(self, yelp_json):
        ds = load_yelp_json(yelp_json, since="2017-01-01",
                            apply_k_core=False)
        assert ds.num_interactions == 4

    def test_min_stars(self, yelp_json):
        ds = load_yelp_json(yelp_json, min_stars=4.0, apply_k_core=False)
        assert ds.num_interactions == 2

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json}\n")
        with pytest.raises(ValueError):
            load_yelp_json(path)

    def test_missing_fields(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"user_id": "u"}) + "\n")
        with pytest.raises(ValueError):
            load_yelp_json(path)
