"""Tests for the real-format MovieLens-100K loader."""

import numpy as np
import pytest

from repro.data import find_local_ml100k, load_ml100k


@pytest.fixture
def u_data(tmp_path):
    """A tiny file in the real u.data format: user item rating timestamp."""
    rows = [
        # user 1: items 10, 20, 30 in time order (timestamps shuffled on disk)
        (1, 20, 4, 200), (1, 10, 5, 100), (1, 30, 3, 300),
        # user 2: items 10, 20
        (2, 10, 4, 150), (2, 20, 2, 250),
        # user 3: single low-rated item
        (3, 40, 1, 50),
    ]
    path = tmp_path / "u.data"
    path.write_text("\n".join("\t".join(map(str, r)) for r in rows) + "\n")
    return path


class TestLoader:
    def test_temporal_ordering(self, u_data):
        ds = load_ml100k(u_data, apply_k_core=False)
        # User ids remapped to 1..3; user 1's items sorted by timestamp.
        seq = ds.sequences[1]
        # Original items 10,20,30 -> remapped 1,2,3 preserving sorted order.
        assert len(seq) == 3
        assert seq == sorted(seq)

    def test_min_rating_filter(self, u_data):
        ds = load_ml100k(u_data, min_rating=3, apply_k_core=False)
        # User 3's rating-1 interaction and user 2's rating-2 one are gone.
        assert ds.num_users == 2
        total = ds.num_interactions
        assert total == 4

    def test_k_core_applied(self, u_data):
        ds = load_ml100k(u_data)  # default 5-core removes everything here
        assert ds.num_users == 0 or all(
            len(s) >= 5 for s in ds.sequences[1:])

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_ml100k(tmp_path / "nope.data")

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "u.data"
        path.write_text("1\t2\t3\n")
        with pytest.raises(ValueError):
            load_ml100k(path)

    def test_find_local(self, tmp_path, u_data):
        assert find_local_ml100k([str(u_data.parent)]) == u_data
        assert find_local_ml100k([str(tmp_path / "empty")]) is None
