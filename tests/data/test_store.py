"""Tests for the mmap interaction store: roundtrip parity, manifest
digests, chunked writes, and chaos (truncated / lost payloads)."""

import json

import numpy as np
import pytest

from repro.data import (InteractionDataset, InteractionStore,
                        StoreIntegrityError, StoreWriter, generate,
                        generate_to_store, open_store,
                        write_store_from_dataset)
from repro.data.store import iter_csr_windows
from repro.resilience import Fault, FaultPlan


def make_dataset(sequences, num_items=None):
    num_items = num_items or max((max(s) for s in sequences if s), default=0)
    return InteractionDataset(
        name="toy", num_users=len(sequences), num_items=num_items,
        sequences=[[]] + [list(s) for s in sequences])


class TestRoundtrip:
    def test_sequences_bitwise_identical(self, tmp_path):
        ds = generate("ml-100k", seed=3)
        store = write_store_from_dataset(ds, tmp_path / "s", verify=True)
        assert store.num_users == ds.num_users
        assert store.num_items == ds.num_items
        for user in range(ds.num_users + 1):
            np.testing.assert_array_equal(store.sequence(user),
                                          ds.sequence(user))

    def test_reopen_matches_writer_result(self, tmp_path):
        ds = make_dataset([[1, 2, 3], [2, 3], [1]])
        written = write_store_from_dataset(ds, tmp_path / "s")
        reopened = open_store(tmp_path / "s")
        np.testing.assert_array_equal(written.indptr, reopened.indptr)
        np.testing.assert_array_equal(written.items, reopened.items)
        assert written.metadata == reopened.metadata

    def test_seq_lengths_and_statistics_match(self, tmp_path):
        ds = generate("ml-100k", seed=1)
        store = write_store_from_dataset(ds, tmp_path / "s")
        np.testing.assert_array_equal(store.seq_lengths(), ds.seq_lengths())
        assert store.statistics()["actions"] == ds.statistics()["actions"]

    def test_chunked_write_equals_single_chunk(self, tmp_path):
        ds = generate("ml-100k", seed=2)
        small = write_store_from_dataset(ds, tmp_path / "small",
                                         chunk_events=7)
        big = write_store_from_dataset(ds, tmp_path / "big",
                                       chunk_events=1 << 20)
        np.testing.assert_array_equal(small.indptr, big.indptr)
        np.testing.assert_array_equal(small.items, big.items)
        np.testing.assert_array_equal(small.timestamps, big.timestamps)
        np.testing.assert_array_equal(small.noise_flags, big.noise_flags)


class TestManifestIntegrity:
    def test_tampered_column_detected(self, tmp_path):
        ds = make_dataset([[1, 2, 3, 4], [2, 3]])
        write_store_from_dataset(ds, tmp_path / "s")
        payload = (tmp_path / "s" / "items.npy").read_bytes()
        flipped = bytearray(payload)
        flipped[-1] ^= 0xFF
        (tmp_path / "s" / "items.npy").write_bytes(bytes(flipped))
        with pytest.raises(StoreIntegrityError):
            open_store(tmp_path / "s", verify=True)

    def test_missing_manifest_rejected(self, tmp_path):
        write_store_from_dataset(make_dataset([[1, 2, 3]]), tmp_path / "s")
        (tmp_path / "s" / "manifest.json").unlink()
        with pytest.raises(StoreIntegrityError):
            open_store(tmp_path / "s")

    def test_count_mismatch_rejected(self, tmp_path):
        write_store_from_dataset(make_dataset([[1, 2, 3]]), tmp_path / "s")
        manifest_path = tmp_path / "s" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["columns"]["items"]["count"] += 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(StoreIntegrityError):
            open_store(tmp_path / "s", verify=False)


class TestChaos:
    """Injected write faults must never publish a readable-but-wrong
    store: either the manifest is absent (no commit marker) or digest
    verification refuses the columns."""

    def test_truncated_payload_refused(self, tmp_path):
        ds = make_dataset([[1, 2, 3, 4, 5], [2, 3, 4]])
        with FaultPlan([Fault(site="store.items", action="truncate",
                              fraction=0.5)]):
            with pytest.raises(StoreIntegrityError):
                write_store_from_dataset(ds, tmp_path / "s", verify=True)

    def test_truncated_payload_caught_without_verify(self, tmp_path):
        # Truncation changes the file size, so the structural element
        # count catches it at publish time even when digest verification
        # is off.
        ds = make_dataset([[1, 2, 3, 4, 5], [2, 3, 4]])
        with FaultPlan([Fault(site="store.timestamps", action="truncate",
                              fraction=0.5)]):
            with pytest.raises(StoreIntegrityError):
                write_store_from_dataset(ds, tmp_path / "s", verify=False)

    def test_corrupted_payload_caught_on_open(self, tmp_path):
        ds = make_dataset([[1, 2, 3, 4, 5], [2, 3, 4]])
        with FaultPlan([Fault(site="store.items", action="corrupt")]):
            write_store_from_dataset(ds, tmp_path / "s", verify=False)
        with pytest.raises(StoreIntegrityError):
            open_store(tmp_path / "s", verify=True)

    def test_crash_before_publish_leaves_no_store(self, tmp_path):
        ds = make_dataset([[1, 2, 3], [2, 3, 4]])
        with FaultPlan([Fault(site="store.items.replace", action="raise")]):
            with pytest.raises(Exception):
                write_store_from_dataset(ds, tmp_path / "s")
        assert not (tmp_path / "s" / "manifest.json").exists()
        with pytest.raises(StoreIntegrityError):
            open_store(tmp_path / "s")

    def test_abort_discards_temp_files(self, tmp_path):
        writer = StoreWriter(tmp_path / "s", "toy", num_items=5)
        writer.append(np.array([1, 2, 3], dtype=np.int64))
        writer.abort()
        leftovers = list((tmp_path / "s").glob("*")) \
            if (tmp_path / "s").exists() else []
        assert not any(p.suffix == ".npy" for p in leftovers)


class TestWindows:
    def test_windows_cover_whole_users(self, tmp_path):
        ds = generate("ml-100k", seed=0)
        store = write_store_from_dataset(ds, tmp_path / "s")
        lengths = store.seq_lengths()
        prev_u1, prev_hi = 1, 0
        for u0, u1, lo, hi in store.iter_user_windows(chunk_events=64):
            assert u0 == prev_u1 and lo == prev_hi
            assert hi - lo == lengths[u0:u1].sum()
            prev_u1, prev_hi = u1, hi
        assert prev_hi == store.num_events

    def test_iter_csr_windows_respects_long_users(self):
        indptr = np.array([0, 0, 100, 101], dtype=np.int64)
        windows = list(iter_csr_windows(indptr, num_users=2, chunk_events=8))
        # A single user longer than the chunk still comes out whole.
        assert windows[0] == (1, 2, 0, 100)
        assert windows[-1][3] == 101


class TestGenerateToStore:
    def test_profile_metadata_recorded(self, tmp_path):
        store = generate_to_store("ml-100k", tmp_path / "s", seed=0,
                                  verify=True)
        assert store.num_users > 0
        assert int(store.indptr[-1]) == store.num_events

    def test_seeded_generation_reproducible(self, tmp_path):
        a = generate_to_store("ml-100k", tmp_path / "a", seed=7)
        b = generate_to_store("ml-100k", tmp_path / "b", seed=7)
        np.testing.assert_array_equal(a.items, b.items)
        np.testing.assert_array_equal(a.indptr, b.indptr)

    def test_small_chunks_still_reproducible(self, tmp_path):
        # RNG is drawn per user-chunk, so reproducibility is pinned per
        # (seed, chunk_users) — not across different chunk sizes.
        a = generate_to_store("ml-100k", tmp_path / "a", seed=5,
                              chunk_users=13)
        b = generate_to_store("ml-100k", tmp_path / "b", seed=5,
                              chunk_users=13)
        np.testing.assert_array_equal(a.items, b.items)
        np.testing.assert_array_equal(a.indptr, b.indptr)
