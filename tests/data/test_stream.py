"""Streaming pipeline parity tests.

Pin the contract the out-of-core path advertises: k-core filtering,
leave-one-out splitting, and batch loading over an mmap store are
*bitwise identical* to their in-memory counterparts on the same data
(property-tested over random datasets), and the shuffle buffer's RNG
surface supports kill-and-resume exactly like ``DataLoader``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (DataLoader, InteractionDataset, StreamingDataLoader,
                        build_loader, generate, k_core_filter,
                        leave_one_out_split, stream_k_core_filter,
                        streaming_leave_one_out, write_store_from_dataset)

datasets = st.lists(
    st.lists(st.integers(1, 12), min_size=0, max_size=10),
    min_size=1, max_size=14)


def make_dataset(sequences, num_items=12):
    return InteractionDataset(
        name="toy", num_users=len(sequences), num_items=num_items,
        sequences=[[]] + [list(s) for s in sequences])


def batches_equal(a, b):
    assert len(a) == len(b)
    for left, right in zip(a, b):
        np.testing.assert_array_equal(left.users, right.users)
        np.testing.assert_array_equal(left.items, right.items)
        np.testing.assert_array_equal(left.mask, right.mask)
        np.testing.assert_array_equal(left.lengths, right.lengths)
        np.testing.assert_array_equal(left.targets, right.targets)


class TestKCoreParity:
    @settings(max_examples=25, deadline=None)
    @given(datasets, st.integers(1, 4), st.integers(1, 4))
    def test_matches_in_memory_fixed_point(self, tmp_path_factory,
                                           sequences, min_seq, min_freq):
        ds = make_dataset(sequences)
        expected = k_core_filter(ds, min_seq_len=min_seq,
                                 min_item_freq=min_freq)
        root = tmp_path_factory.mktemp("kcore")
        store = write_store_from_dataset(ds, root / "raw")
        core = stream_k_core_filter(store, root / "core",
                                    min_seq_len=min_seq,
                                    min_item_freq=min_freq, verify=True)
        assert core.num_users == expected.num_users
        assert core.num_items == expected.num_items
        for user in range(expected.num_users + 1):
            np.testing.assert_array_equal(core.sequence(user),
                                          expected.sequence(user))

    def test_small_windows_same_result(self, tmp_path):
        ds = generate("ml-100k", seed=4)
        store = write_store_from_dataset(ds, tmp_path / "raw")
        wide = stream_k_core_filter(store, tmp_path / "wide",
                                    min_seq_len=3, min_item_freq=3)
        narrow = stream_k_core_filter(store, tmp_path / "narrow",
                                      min_seq_len=3, min_item_freq=3,
                                      chunk_events=17)
        np.testing.assert_array_equal(wide.indptr, narrow.indptr)
        np.testing.assert_array_equal(wide.items, narrow.items)

    def test_everything_filtered_yields_empty_store(self, tmp_path):
        ds = make_dataset([[1], [2]])
        store = write_store_from_dataset(ds, tmp_path / "raw")
        core = stream_k_core_filter(store, tmp_path / "core",
                                    min_seq_len=5, min_item_freq=5)
        assert core.num_users == 0
        assert core.num_events == 0


class TestSplitParity:
    @settings(max_examples=25, deadline=None)
    @given(datasets, st.integers(1, 8), st.booleans())
    def test_examples_identical(self, tmp_path_factory, sequences,
                                max_len, augment):
        ds = make_dataset(sequences)
        expected = leave_one_out_split(ds, max_len=max_len,
                                       augment_prefixes=augment)
        store = write_store_from_dataset(
            ds, tmp_path_factory.mktemp("split") / "s")
        split = streaming_leave_one_out(store, max_len=max_len,
                                        augment_prefixes=augment)
        for role in ("train", "valid", "test"):
            want = getattr(expected, role)
            got = list(getattr(split, role))
            assert len(got) == len(want)
            assert len(getattr(split, role)) == len(want)
            for mem, streamed in zip(want, got):
                assert streamed.user == mem.user
                assert streamed.target == mem.target
                assert list(streamed.sequence) == list(mem.sequence)

    def test_streams_are_reiterable(self, tmp_path):
        ds = generate("ml-100k", seed=0)
        store = write_store_from_dataset(ds, tmp_path / "s")
        split = streaming_leave_one_out(store, max_len=10)
        first = [(e.user, e.target) for e in split.train]
        second = [(e.user, e.target) for e in split.train]
        assert first == second and first

    def test_take_caps_stream(self, tmp_path):
        ds = generate("ml-100k", seed=0)
        store = write_store_from_dataset(ds, tmp_path / "s")
        split = streaming_leave_one_out(store, max_len=10)
        capped = split.valid.take(5)
        assert len(capped) == 5
        assert len(list(capped)) == 5
        full = list(split.valid)
        for mem, streamed in zip(full[:5], capped):
            assert (mem.user, mem.target) == (streamed.user, streamed.target)

    def test_invalid_max_len(self, tmp_path):
        ds = make_dataset([[1, 2, 3]])
        store = write_store_from_dataset(ds, tmp_path / "s")
        with pytest.raises(ValueError):
            streaming_leave_one_out(store, max_len=0)


class TestLoaderParity:
    @settings(max_examples=20, deadline=None)
    @given(datasets, st.integers(1, 5), st.integers(0, 3), st.booleans())
    def test_full_buffer_bitwise_identical(self, tmp_path_factory,
                                           sequences, batch_size, seed,
                                           drop_last):
        ds = make_dataset(sequences)
        expected = leave_one_out_split(ds, max_len=6)
        store = write_store_from_dataset(
            ds, tmp_path_factory.mktemp("loader") / "s")
        split = streaming_leave_one_out(store, max_len=6)
        memory = DataLoader(expected.train, batch_size=batch_size,
                            max_len=6, shuffle=True, seed=seed,
                            drop_last=drop_last)
        buffer = max(len(split.train), batch_size, 1)
        streaming = StreamingDataLoader(split.train, batch_size=batch_size,
                                        max_len=6, shuffle=True, seed=seed,
                                        drop_last=drop_last,
                                        buffer_size=buffer)
        assert len(streaming) == len(memory)
        for _ in range(2):  # two epochs: RNG advances identically
            batches_equal(list(memory), list(streaming))

    def test_unshuffled_order_invariant_to_buffer_size(self, tmp_path):
        ds = generate("ml-100k", seed=1)
        store = write_store_from_dataset(ds, tmp_path / "s")
        split = streaming_leave_one_out(store, max_len=10)
        memory = DataLoader(
            leave_one_out_split(ds, max_len=10).train,
            batch_size=16, max_len=10, shuffle=False)
        for buffer in (16, 23, 1 << 12):
            loader = StreamingDataLoader(split.train, batch_size=16,
                                         max_len=10, shuffle=False,
                                         buffer_size=buffer)
            batches_equal(list(memory), list(loader))

    def test_small_buffer_covers_every_example_once(self, tmp_path):
        ds = generate("ml-100k", seed=2)
        store = write_store_from_dataset(ds, tmp_path / "s")
        split = streaming_leave_one_out(store, max_len=10)
        loader = StreamingDataLoader(split.train, batch_size=8,
                                     max_len=10, shuffle=True, seed=3,
                                     buffer_size=32)
        seen = np.concatenate([b.users for b in loader])
        expected = np.sort(np.array([e.user for e in split.train]))
        np.testing.assert_array_equal(np.sort(seen), expected)

    def test_small_buffer_deterministic_under_seed(self, tmp_path):
        ds = generate("ml-100k", seed=2)
        store = write_store_from_dataset(ds, tmp_path / "s")
        split = streaming_leave_one_out(store, max_len=10)
        runs = [list(StreamingDataLoader(split.train, batch_size=8,
                                         max_len=10, shuffle=True, seed=9,
                                         buffer_size=32))
                for _ in range(2)]
        batches_equal(runs[0], runs[1])

    def test_buffer_smaller_than_batch_rejected(self, tmp_path):
        ds = make_dataset([[1, 2, 3, 4, 5]])
        store = write_store_from_dataset(ds, tmp_path / "s")
        split = streaming_leave_one_out(store, max_len=5)
        with pytest.raises(ValueError):
            StreamingDataLoader(split.train, batch_size=64, buffer_size=8)

    def test_build_loader_dispatch(self, tmp_path):
        ds = make_dataset([[1, 2, 3, 4, 5]])
        store = write_store_from_dataset(ds, tmp_path / "s")
        split = streaming_leave_one_out(store, max_len=5)
        memory_split = leave_one_out_split(ds, max_len=5)
        assert isinstance(build_loader(memory_split.train), DataLoader)
        assert isinstance(build_loader(split.train), StreamingDataLoader)


class TestKillAndResume:
    def test_rng_state_roundtrip_resumes_shuffle(self, tmp_path):
        """Epoch 2 of a crashed-and-resumed loader must equal epoch 2 of
        the uninterrupted run — the checkpoint contract."""
        ds = generate("ml-100k", seed=5)
        store = write_store_from_dataset(ds, tmp_path / "s")
        split = streaming_leave_one_out(store, max_len=10)

        def fresh():
            return StreamingDataLoader(split.train, batch_size=8,
                                       max_len=10, shuffle=True, seed=11,
                                       buffer_size=32)

        uninterrupted = fresh()
        list(uninterrupted)  # epoch 1
        epoch2 = list(uninterrupted)

        crashed = fresh()
        list(crashed)  # epoch 1, then the process dies
        snapshot = crashed.rng_state()
        del crashed

        resumed = fresh()  # fresh process: seed alone is NOT enough...
        resumed.set_rng_state(snapshot)  # ...the snapshot is
        batches_equal(epoch2, list(resumed))

    def test_mid_epoch_snapshot_replays_tail_exactly(self, tmp_path):
        """A snapshot taken mid-epoch captures the shuffle state exactly:
        a replay reaching the same point holds the identical state and
        produces the identical remaining batches."""
        ds = generate("ml-100k", seed=5)
        store = write_store_from_dataset(ds, tmp_path / "s")
        split = streaming_leave_one_out(store, max_len=10)

        def fresh():
            return StreamingDataLoader(split.train, batch_size=8,
                                       max_len=10, shuffle=True, seed=13,
                                       buffer_size=32)

        first = fresh()
        run = iter(first)
        [next(run) for _ in range(3)]
        snapshot = first.rng_state()
        tail = list(run)

        replay = fresh()
        rerun = iter(replay)
        [next(rerun) for _ in range(3)]
        assert replay.rng_state() == snapshot
        batches_equal(tail, list(rerun))

    def test_seed_alone_does_not_resume(self, tmp_path):
        ds = generate("ml-100k", seed=5)
        store = write_store_from_dataset(ds, tmp_path / "s")
        split = streaming_leave_one_out(store, max_len=10)
        loader = StreamingDataLoader(split.train, batch_size=8, max_len=10,
                                     shuffle=True, seed=11, buffer_size=32)
        list(loader)
        epoch2_first = next(iter(loader)).users
        restarted = StreamingDataLoader(split.train, batch_size=8,
                                        max_len=10, shuffle=True, seed=11,
                                        buffer_size=32)
        epoch1_first = next(iter(restarted)).users
        assert not np.array_equal(epoch2_first, epoch1_first)
