"""Tests for synthetic generators, batching, and noise injection/scoring."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (PAD_ID, DataLoader, NegativeSampler, PROFILES,
                        generate, inject_noise, leave_one_out_split,
                        pad_sequences, score_denoising)


class TestSyntheticGenerator:
    def test_deterministic_per_seed(self):
        a = generate("beauty", seed=7)
        b = generate("beauty", seed=7)
        assert a.sequences == b.sequences

    def test_different_seed_differs(self):
        a = generate("beauty", seed=1)
        b = generate("beauty", seed=2)
        assert a.sequences != b.sequences

    def test_profile_scale_shapes(self):
        ds = generate("ml-100k", seed=0)
        profile = PROFILES["ml-100k"]
        assert ds.num_users == profile.num_users
        assert ds.num_items == profile.num_items
        # Mean length within 25% of the profile target.
        assert abs(ds.avg_sequence_length - profile.mean_length) < \
            0.25 * profile.mean_length

    def test_relative_lengths_match_table2(self):
        """ML datasets must have much longer sequences than Amazon/Yelp."""
        ml = generate("ml-1m", seed=0)
        beauty = generate("beauty", seed=0)
        assert ml.avg_sequence_length > 3 * beauty.avg_sequence_length

    def test_noise_flags_recorded(self):
        ds = generate("yelp", seed=0)
        flags = ds.metadata["noise_flags"]
        assert len(flags) == ds.num_users + 1
        total = sum(sum(f) for f in flags)
        actions = ds.num_interactions
        observed_rate = total / actions
        assert 0.5 * 0.18 < observed_rate < 1.5 * 0.18

    def test_noise_rate_override(self):
        ds = generate("beauty", seed=0, noise_rate=0.0)
        assert sum(sum(f) for f in ds.metadata["noise_flags"]) == 0

    def test_invalid_profile(self):
        with pytest.raises(KeyError):
            generate("does-not-exist")

    def test_invalid_noise_rate(self):
        with pytest.raises(ValueError):
            generate("beauty", noise_rate=1.5)

    def test_scale_parameter(self):
        small = generate("sports", seed=0, scale=0.25)
        assert small.num_users == 100

    def test_clean_items_follow_clusters(self):
        """Non-noise interactions should concentrate in the user's clusters."""
        ds = generate("beauty", seed=3, noise_rate=0.0)
        clusters = ds.metadata["item_clusters"]
        profile = PROFILES["beauty"]
        concentrated = 0
        for seq in ds.sequences[1:]:
            cs = {clusters[i] for i in seq}
            if len(cs) <= profile.clusters_per_user:
                concentrated += 1
        assert concentrated / ds.num_users > 0.95


class TestPadding:
    def test_left_padding(self):
        items, mask, lengths = pad_sequences([[1, 2], [3, 4, 5]])
        np.testing.assert_array_equal(items, [[0, 1, 2], [3, 4, 5]])
        np.testing.assert_array_equal(mask, [[False, True, True]] + [[True] * 3])
        np.testing.assert_array_equal(lengths, [2, 3])

    def test_truncation_keeps_tail(self):
        items, _, lengths = pad_sequences([[1, 2, 3, 4]], max_len=2)
        np.testing.assert_array_equal(items, [[3, 4]])
        assert lengths[0] == 2

    def test_empty_list_raises(self):
        with pytest.raises(ValueError):
            pad_sequences([])

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.lists(st.integers(1, 50), min_size=1, max_size=12),
                    min_size=1, max_size=6))
    def test_padding_roundtrip_property(self, seqs):
        items, mask, lengths = pad_sequences(seqs)
        for row, seq in enumerate(seqs):
            recovered = items[row][mask[row]].tolist()
            assert recovered == seq
            assert lengths[row] == len(seq)


class TestDataLoader:
    def _split(self):
        ds = generate("beauty", seed=0, scale=0.3)
        return leave_one_out_split(ds, max_len=20)

    def test_covers_all_examples(self):
        split = self._split()
        loader = DataLoader(split.train, batch_size=16, max_len=20, seed=0)
        seen = sum(b.batch_size for b in loader)
        assert seen == len(split.train)

    def test_batch_shapes_consistent(self):
        split = self._split()
        for batch in DataLoader(split.train, batch_size=8, max_len=20):
            assert batch.items.shape == (batch.batch_size, 20)
            assert batch.mask.shape == batch.items.shape
            assert (batch.items[batch.mask] != PAD_ID).all()
            assert (batch.targets >= 1).all()

    def test_shuffle_determinism(self):
        split = self._split()
        first = [b.users.tolist() for b in
                 DataLoader(split.train, batch_size=8, seed=5)]
        second = [b.users.tolist() for b in
                  DataLoader(split.train, batch_size=8, seed=5)]
        # Same seed, fresh loaders -> same order
        assert first == second

    def test_drop_last(self):
        split = self._split()
        n = len(split.train)
        loader = DataLoader(split.train, batch_size=n - 1, drop_last=True)
        assert len(list(loader)) == 1

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader([], batch_size=0)


class TestNegativeSampler:
    def test_excludes_positives(self):
        sampler = NegativeSampler(num_items=10, seed=0)
        negs = sampler.sample([1, 2, 3], count=50)
        assert not set(negs.tolist()) & {1, 2, 3}
        assert ((negs >= 1) & (negs <= 10)).all()

    def test_batch_sampling_avoids_targets(self):
        sampler = NegativeSampler(num_items=5, seed=0)
        targets = np.array([1, 2, 3, 4, 5] * 20)
        negs = sampler.sample_batch(targets)
        assert (negs != targets).all()

    def test_all_positive_raises(self):
        sampler = NegativeSampler(num_items=3)
        with pytest.raises(ValueError):
            sampler.sample([1, 2, 3], count=1)


class TestNoiseInjection:
    def test_inserted_count_and_flags(self):
        ds = generate("beauty", seed=0, scale=0.3, noise_rate=0.0)
        noisy = inject_noise(ds, ratio=0.2, seed=1)
        for user in range(1, ds.num_users + 1):
            raw = ds.sequences[user]
            new = noisy.dataset.sequences[user]
            flags = noisy.injected[user]
            assert len(new) == len(flags)
            assert len(new) - len(raw) == int(np.ceil(0.2 * len(raw)))
            # Raw items survive in order.
            kept = [i for i, f in zip(new, flags) if not f]
            assert kept == raw

    def test_inserted_items_unobserved(self):
        ds = generate("beauty", seed=0, scale=0.3)
        noisy = inject_noise(ds, ratio=0.3, seed=2)
        for user in range(1, ds.num_users + 1):
            seen = set(ds.sequences[user])
            for item, flag in zip(noisy.dataset.sequences[user],
                                  noisy.injected[user]):
                if flag:
                    assert item not in seen

    def test_max_length_gate(self):
        ds = generate("ml-100k", seed=0, scale=0.5)
        noisy = inject_noise(ds, ratio=0.5, seed=0, max_length=5)
        # Nearly all ml-100k sequences exceed 5 items -> no insertions there.
        for user in range(1, ds.num_users + 1):
            if len(ds.sequences[user]) >= 5:
                assert not any(noisy.injected[user])

    def test_invalid_ratio(self):
        ds = generate("beauty", seed=0, scale=0.3)
        with pytest.raises(ValueError):
            inject_noise(ds, ratio=-0.1)


class TestOUPScoring:
    def _tiny_noisy(self):
        ds = generate("beauty", seed=0, scale=0.3, noise_rate=0.0)
        return ds, inject_noise(ds, ratio=0.25, seed=3)

    def test_perfect_denoiser(self):
        _, noisy = self._tiny_noisy()
        kept = {
            u: [p for p, f in enumerate(noisy.injected[u]) if not f]
            for u in range(1, noisy.dataset.num_users + 1)
        }
        result = score_denoising(noisy, kept)
        assert result.under_denoising == 0.0
        assert result.over_denoising == 0.0

    def test_keep_everything(self):
        _, noisy = self._tiny_noisy()
        result = score_denoising(noisy, {})
        assert result.under_denoising == 1.0
        assert result.over_denoising == 0.0

    def test_drop_everything(self):
        _, noisy = self._tiny_noisy()
        kept = {u: [] for u in range(1, noisy.dataset.num_users + 1)}
        result = score_denoising(noisy, kept)
        assert result.under_denoising == 0.0
        assert result.over_denoising == 1.0

    def test_out_of_range_position_rejected(self):
        _, noisy = self._tiny_noisy()
        with pytest.raises(ValueError):
            score_denoising(noisy, {1: [9999]})


class TestBucketedDataLoader:
    def _split(self):
        from repro.data import BucketedDataLoader
        ds = generate("beauty", seed=0, scale=0.3)
        split = leave_one_out_split(ds, max_len=20)
        return BucketedDataLoader, split

    def test_covers_all_examples(self):
        cls, split = self._split()
        loader = cls(split.train, batch_size=16, max_len=20, seed=0)
        assert sum(b.batch_size for b in loader) == len(split.train)

    def test_batches_are_length_homogeneous(self):
        cls, split = self._split()
        spreads = []
        for batch in cls(split.train, batch_size=16, max_len=20, seed=0):
            spreads.append(batch.lengths.max() - batch.lengths.min())
        # Bucketing keeps within-batch length spread small.
        assert np.mean(spreads) <= 3

    def test_less_padding_than_plain_loader(self):
        from repro.data import DataLoader
        cls, split = self._split()
        def padded_cells(loader):
            return sum((~b.mask).sum() + b.mask.sum() for b in loader), \
                   sum((~b.mask).sum() for b in loader)
        _, plain_pad = padded_cells(DataLoader(split.train, batch_size=16,
                                               max_len=20, seed=0))
        _, bucket_pad = padded_cells(cls(split.train, batch_size=16,
                                         max_len=20, seed=0))
        assert bucket_pad <= plain_pad

    def test_width_capped_by_max_len(self):
        cls, split = self._split()
        for batch in cls(split.train, batch_size=16, max_len=6, seed=0):
            assert batch.max_len <= 6


class TestModuleSummary:
    def test_summary_lists_parameters(self):
        from repro.models import GRU4Rec
        model = GRU4Rec(num_items=10, dim=4, max_len=5,
                        rng=np.random.default_rng(0))
        text = model.summary()
        assert "GRU4Rec" in text
        assert "item_embedding.weight" in text
        assert f"{model.num_parameters():,}" in text

    def test_summary_truncates(self):
        from repro.models import SASRec
        model = SASRec(num_items=10, dim=4, max_len=5,
                       rng=np.random.default_rng(0))
        text = model.summary(max_rows=3)
        assert "more parameters" in text
