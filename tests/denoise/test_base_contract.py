"""Contract tests for SequenceDenoiser.keep_decisions / dropped_ratio."""

import numpy as np

from repro.denoise.base import SequenceDenoiser
from repro.nn import Tensor


class DropEverySecond(SequenceDenoiser):
    """Stub denoiser keeping alternate valid positions (0-based even)."""

    max_len = 6

    def forward(self, items, mask=None):
        return Tensor(np.zeros((len(items), 3)))

    def loss(self, batch):
        return Tensor(np.zeros(1))

    def keep_mask(self, items, mask):
        mask = np.asarray(mask, bool)
        keep = np.zeros_like(mask)
        for row in range(mask.shape[0]):
            valid = np.flatnonzero(mask[row])
            keep[row, valid[::2]] = True
        return keep


class TestKeepDecisions:
    def test_positions_relative_to_sequence(self):
        model = DropEverySecond()
        decisions = model.keep_decisions([[10, 11, 12, 13]])
        # Left padding width 4 -> valid cols 0..3 kept at ::2 -> pos 0, 2.
        assert decisions[1] == [0, 2]

    def test_truncated_prefix_kept_by_default(self):
        model = DropEverySecond()  # max_len = 6
        seq = list(range(1, 11))  # length 10 > 6
        decisions = model.keep_decisions([seq])
        kept = decisions[1]
        # Prefix positions 0..3 (outside the window) default to kept.
        assert all(p in kept for p in range(4))
        # Tail decisions land within [4, 10).
        assert all(0 <= p < 10 for p in kept)

    def test_dropped_ratio_value(self):
        model = DropEverySecond()
        # 4-item sequence keeps 2 -> 50% dropped.
        ratio = model.dropped_ratio([[1, 2, 3, 4]])
        np.testing.assert_allclose(ratio, 0.5)

    def test_dropped_ratio_empty(self):
        model = DropEverySecond()
        assert model.dropped_ratio([]) == 0.0

    def test_multiple_sequences_keyed_from_one(self):
        model = DropEverySecond()
        decisions = model.keep_decisions([[1, 2], [3, 4, 5]])
        assert set(decisions) == {1, 2}
