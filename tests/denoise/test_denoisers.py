"""Tests for the five denoising baselines (Table IV)."""

import numpy as np
import pytest

from repro.data import PAD_ID, generate, inject_noise, score_denoising
from repro.data.batching import Batch, pad_sequences
from repro.denoise import DCRec, DENOISERS, DSAN, FMLPRec, HSD, STEAM
from repro.denoise.fmlprec import circular_filter
from repro.denoise.hsd import NoiseGate
from repro.nn import Adam, Tensor

RNG = np.random.default_rng(21)
NUM_ITEMS = 40
DIM = 16
MAX_LEN = 10


def make_model(name):
    cls = DENOISERS[name]
    kwargs = dict(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                  rng=np.random.default_rng(0))
    return cls(**kwargs)


def make_batch(batch_size=4):
    seqs = [RNG.integers(1, NUM_ITEMS + 1,
                         size=RNG.integers(3, MAX_LEN + 1)).tolist()
            for _ in range(batch_size)]
    items, mask, lengths = pad_sequences(seqs, max_len=MAX_LEN)
    return Batch(users=np.arange(1, batch_size + 1), items=items, mask=mask,
                 lengths=lengths,
                 targets=RNG.integers(1, NUM_ITEMS + 1, size=batch_size))


@pytest.mark.parametrize("name", sorted(DENOISERS))
class TestAllDenoisers:
    def test_forward_and_loss(self, name):
        model = make_model(name)
        batch = make_batch()
        logits = model.forward(batch.items, batch.mask)
        assert logits.shape[0] == batch.batch_size
        assert (logits.data[:, PAD_ID] < -1e100).all()
        loss = model.loss(batch)
        assert np.isfinite(loss.item())

    def test_gradients_flow(self, name):
        model = make_model(name)
        model.loss(make_batch()).backward()
        grads = [p.grad for p in model.parameters() if p.grad is not None]
        assert grads, "no parameter received a gradient"
        assert sum(float(np.abs(g).sum()) for g in grads) > 0

    def test_one_step_reduces_loss(self, name):
        model = make_model(name)
        model.eval()
        batch = make_batch()
        opt = Adam(model.parameters(), lr=0.01)
        np.random.seed(0)
        first = model.loss(batch)
        first.backward()
        opt.step()
        second = model.loss(batch)
        assert second.item() < first.item() + 1e-6

    def test_keep_decisions_interface(self, name):
        model = make_model(name)
        seqs = [RNG.integers(1, NUM_ITEMS + 1, size=6).tolist()
                for _ in range(3)]
        decisions = model.keep_decisions(seqs)
        assert set(decisions) == {1, 2, 3}
        for key, kept in decisions.items():
            assert all(0 <= p < len(seqs[key - 1]) for p in kept)

    def test_explicit_flag_consistent(self, name):
        model = make_model(name)
        if not model.explicit:
            # Implicit methods keep every valid item.
            seqs = [[1, 2, 3, 4, 5]]
            assert model.keep_decisions(seqs)[1] == [0, 1, 2, 3, 4]


class TestCircularFilter:
    def test_identity_kernel(self):
        x = Tensor(RNG.normal(size=(2, 5, 3)))
        kernel = np.zeros((5, 3))
        kernel[0] = 1.0  # delta at lag 0 -> identity
        out = circular_filter(x, Tensor(kernel))
        np.testing.assert_allclose(out.data, x.data, atol=1e-12)

    def test_shift_kernel(self):
        x = Tensor(RNG.normal(size=(1, 4, 2)))
        kernel = np.zeros((4, 2))
        kernel[1] = 1.0  # delta at lag 1 -> circular shift by one
        out = circular_filter(x, Tensor(kernel))
        np.testing.assert_allclose(out.data[:, 1:], x.data[:, :-1], atol=1e-12)
        np.testing.assert_allclose(out.data[:, 0], x.data[:, -1], atol=1e-12)

    def test_matches_fft(self):
        """Time-domain circular conv == FFT elementwise multiply."""
        x = RNG.normal(size=(2, 6, 3))
        k = RNG.normal(size=(6, 3))
        out = circular_filter(Tensor(x), Tensor(k)).data
        ref = np.fft.ifft(np.fft.fft(x, axis=1) * np.fft.fft(k, axis=0)[None],
                          axis=1).real
        np.testing.assert_allclose(out, ref, atol=1e-10)

    def test_gradcheck(self):
        x = Tensor(RNG.normal(size=(1, 4, 2)), requires_grad=True)
        k = Tensor(RNG.normal(size=(4, 2)), requires_grad=True)
        weights = RNG.normal(size=(1, 4, 2))
        (circular_filter(x, k) * Tensor(weights)).sum().backward()
        eps = 1e-6
        for tensor, data in ((x, x.data), (k, k.data)):
            flat = data.reshape(-1)
            num = np.zeros_like(flat)
            for i in range(flat.size):
                orig = flat[i]
                flat[i] = orig + eps
                hi = (circular_filter(Tensor(x.data), Tensor(k.data)).data
                      * weights).sum()
                flat[i] = orig - eps
                lo = (circular_filter(Tensor(x.data), Tensor(k.data)).data
                      * weights).sum()
                flat[i] = orig
                num[i] = (hi - lo) / (2 * eps)
            np.testing.assert_allclose(tensor.grad.reshape(-1), num, atol=1e-5)

    def test_kernel_shape_mismatch(self):
        with pytest.raises(ValueError):
            circular_filter(Tensor(np.zeros((1, 4, 2))),
                            Tensor(np.zeros((3, 2))))


class TestDSAN:
    def test_sparse_attention_drops_items(self):
        model = make_model("DSAN")
        # With random weights some items usually get exactly zero attention.
        seqs = [RNG.integers(1, NUM_ITEMS + 1, size=8).tolist()
                for _ in range(8)]
        decisions = model.keep_decisions(seqs)
        total_kept = sum(len(v) for v in decisions.values())
        assert total_kept < 64  # sparsemax produced at least one zero

    def test_keep_mask_respects_padding(self):
        model = make_model("DSAN")
        items, mask, _ = pad_sequences([[1, 2, 3]], max_len=6)
        keep = model.keep_mask(items, mask)
        assert not keep[0, :3].any()  # padded positions never kept


class TestHSD:
    def test_gate_binary_and_masked(self):
        gate = NoiseGate(DIM, rng=np.random.default_rng(0))
        states = Tensor(RNG.normal(size=(3, 6, DIM)))
        mask = np.ones((3, 6), dtype=bool)
        mask[0, :3] = False
        keep = gate(states, mask)
        vals = keep.data
        assert ((vals == 0) | (vals == 1)).all()
        assert (vals[0, :3] == 0).all()

    def test_gate_guidance_changes_decision_scores(self):
        gate = NoiseGate(DIM, rng=np.random.default_rng(0))
        gate.eval()
        states = Tensor(RNG.normal(size=(2, 6, DIM)))
        mask = np.ones((2, 6), dtype=bool)
        s1, u1 = gate.signals(states, mask)
        guidance = Tensor(RNG.normal(size=(2, 8, DIM)) * 3)
        s2, u2 = gate.signals(states, mask, guidance=guidance)
        np.testing.assert_allclose(s1.data, s2.data)  # seq signal unchanged
        assert not np.allclose(u1.data, u2.data)      # interest signal moved

    def test_never_empties_sequence(self):
        model = make_model("HSD")
        items, mask, _ = pad_sequences([[5, 5, 5]], max_len=6)
        keep = model.keep_mask(items, mask)
        assert keep.any()

    def test_temperature_anneals_via_hook(self):
        model = make_model("HSD")
        start = model.gate.temperature.tau
        for _ in range(model.gate.temperature.anneal_every):
            model.on_batch_end()
        assert model.gate.temperature.tau < start


class TestSTEAM:
    def test_corruption_labels(self):
        model = make_model("STEAM")
        items, mask, _ = pad_sequences(
            [RNG.integers(1, NUM_ITEMS + 1, size=8).tolist()], max_len=MAX_LEN)
        corrupted, cmask, labels = model._corrupt(items, mask)
        assert corrupted.shape == items.shape
        # Labels only at valid positions; inserted items labeled DELETE.
        assert (labels[~cmask] == -1).all()
        valid_labels = labels[cmask]
        assert set(valid_labels.tolist()) <= {0, 1, 2}

    def test_high_insert_rate_creates_delete_labels(self):
        model = STEAM(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                      corrupt_insert=0.9, corrupt_delete=0.0,
                      rng=np.random.default_rng(0))
        items, mask, _ = pad_sequences([[1, 2, 3, 4]], max_len=MAX_LEN)
        _, cmask, labels = model._corrupt(items, mask)
        assert (labels[cmask] == 1).sum() > 0  # OP_DELETE labels present


class TestDCRec:
    def test_dataset_aware_construction(self):
        ds = generate("beauty", seed=0, scale=0.3)
        model = DCRec(num_items=ds.num_items, dim=DIM, max_len=MAX_LEN,
                      dataset=ds, rng=np.random.default_rng(0))
        # Popular items get smaller conformity weight than rare ones.
        pop = ds.item_popularity()
        most, least = pop[1:].argmax() + 1, pop[1:].argmin() + 1
        assert model._conformity[most] < model._conformity[least]

    def test_contrastive_term_changes_loss(self):
        ds = generate("beauty", seed=0, scale=0.3)
        rng_batch = make_batch()
        a = DCRec(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                  contrastive_weight=0.0, rng=np.random.default_rng(0))
        b = DCRec(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                  contrastive_weight=1.0, rng=np.random.default_rng(0))
        a.eval(), b.eval()
        assert a.loss(rng_batch).item() != b.loss(rng_batch).item()


class TestOUPIntegration:
    def test_denoiser_scores_against_ground_truth(self):
        """End-to-end Fig. 1 protocol on an untrained HSD (sanity only)."""
        ds = generate("beauty", seed=0, scale=0.3, noise_rate=0.0)
        noisy = inject_noise(ds, ratio=0.2, seed=0)
        model = HSD(num_items=ds.num_items, dim=DIM, max_len=MAX_LEN,
                    rng=np.random.default_rng(0))
        seqs = noisy.dataset.sequences[1:]
        result = score_denoising(noisy, model.keep_decisions(seqs))
        assert 0.0 <= result.under_denoising <= 1.0
        assert 0.0 <= result.over_denoising <= 1.0
