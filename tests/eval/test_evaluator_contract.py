"""Contract tests for the Evaluator against stub models."""

import numpy as np

from repro.data.dataset import SequenceExample
from repro.eval import Evaluator
from repro.nn import Tensor


class OracleModel:
    """Stub that always ranks the target first."""

    training = False
    num_items = 10

    def eval(self):
        self.training = False

    def train(self):
        self.training = True

    def forward(self, items, mask):
        batch = items.shape[0]
        logits = np.zeros((batch, self.num_items + 1))
        # Score each row's last item's successor highest... the evaluator
        # does not know targets, so the oracle can't cheat through
        # forward(); rank tests use AntiOracle below instead.
        return Tensor(logits)


class BatchAwareModel(OracleModel):
    """Stub proving the evaluator prefers ``forward_batch``."""

    def __init__(self):
        self.used_batch_forward = False

    def forward_batch(self, batch):
        self.used_batch_forward = True
        logits = np.zeros((batch.batch_size, self.num_items + 1))
        logits[np.arange(batch.batch_size), batch.targets] = 10.0
        return Tensor(logits)


def examples(n=6):
    return [SequenceExample(user=i + 1, sequence=[1, 2, 3], target=(i % 9) + 1)
            for i in range(n)]


class TestEvaluatorContract:
    def test_prefers_forward_batch(self):
        model = BatchAwareModel()
        evaluator = Evaluator(examples(), max_len=5)
        metrics = evaluator.evaluate(model)
        assert model.used_batch_forward
        assert metrics["HR@5"] == 1.0  # forward_batch scored targets top

    def test_constant_scores_rank_pessimistically(self):
        model = OracleModel()
        evaluator = Evaluator(examples(), max_len=5)
        ranks = evaluator.ranks(model)
        # All-equal scores: pessimistic tie-breaking ranks targets last.
        assert (ranks == model.num_items + 1).all()

    def test_restores_train_mode(self):
        model = BatchAwareModel()
        model.train()
        Evaluator(examples(), max_len=5).evaluate(model)
        assert model.training

    def test_rank_order_matches_example_order(self):
        model = BatchAwareModel()
        evaluator = Evaluator(examples(4), max_len=5, batch_size=2)
        ranks = evaluator.ranks(model)
        assert len(ranks) == 4
        assert (ranks == 1).all()
