"""Tests for ranking metrics against hand-computed values."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.eval import (compare_rank_lists, hit_ratio, improvement,
                        metric_report, mrr, ndcg, paired_t_test,
                        ranks_from_scores, welch_t_test)


class TestRanks:
    def test_simple_ranking(self):
        scores = np.array([[0.1, 0.9, 0.5, 0.3]])
        assert ranks_from_scores(scores, np.array([1]))[0] == 1
        assert ranks_from_scores(scores, np.array([2]))[0] == 2
        assert ranks_from_scores(scores, np.array([0]))[0] == 4

    def test_ties_pessimistic(self):
        scores = np.array([[0.5, 0.5, 0.5]])
        # All tied: the target counts every tie ahead of it.
        assert ranks_from_scores(scores, np.array([0]))[0] == 3

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ranks_from_scores(np.zeros(3), np.zeros(3, dtype=int))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 30))
    def test_rank_bounds_property(self, n_items):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=(5, n_items))
        targets = rng.integers(0, n_items, size=5)
        ranks = ranks_from_scores(scores, targets)
        assert ((ranks >= 1) & (ranks <= n_items)).all()

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 25), st.integers(1, 6), st.integers(0, 10**6))
    def test_fused_pass_matches_two_pass_reference(self, n_items, rows,
                                                   seed):
        """The single >= comparison must equal the legacy two-pass
        (strictly-higher + ties) formulation, ties included."""
        rng = np.random.default_rng(seed)
        # Integer levels force frequent exact ties.
        scores = rng.integers(0, 4, size=(rows, n_items)).astype(np.float64)
        targets = rng.integers(0, n_items, size=rows)
        t = scores[np.arange(rows), targets][:, None]
        reference = ((scores > t).sum(axis=1)
                     + (scores == t).sum(axis=1) - 1 + 1)
        np.testing.assert_array_equal(
            ranks_from_scores(scores, targets), reference)

    def test_float32_scores_rank_identically(self):
        rng = np.random.default_rng(1)
        scores64 = rng.normal(size=(6, 17))
        targets = rng.integers(0, 17, size=6)
        scores32 = scores64.astype(np.float32)
        np.testing.assert_array_equal(
            ranks_from_scores(scores32, targets),
            ranks_from_scores(scores32.astype(np.float64), targets))

    def test_returns_int64(self):
        ranks = ranks_from_scores(np.eye(3, dtype=np.float32),
                                  np.array([0, 1, 2]))
        assert ranks.dtype == np.int64


class TestMetrics:
    def test_hit_ratio(self):
        ranks = np.array([1, 5, 11, 20, 21])
        np.testing.assert_allclose(hit_ratio(ranks, 10), 0.4)
        np.testing.assert_allclose(hit_ratio(ranks, 20), 0.8)

    def test_ndcg_hand_computed(self):
        ranks = np.array([1, 2, 100])
        expected = (1.0 + 1.0 / np.log2(3.0) + 0.0) / 3
        np.testing.assert_allclose(ndcg(ranks, 10), expected)

    def test_mrr(self):
        ranks = np.array([1, 4, 50])
        np.testing.assert_allclose(mrr(ranks, 20), (1 + 0.25 + 0) / 3)
        np.testing.assert_allclose(mrr(ranks), (1 + 0.25 + 0.02) / 3)

    def test_perfect_and_worst(self):
        perfect = np.ones(10, dtype=int)
        assert hit_ratio(perfect, 5) == ndcg(perfect, 5) == mrr(perfect, 5) == 1.0
        worst = np.full(10, 10_000)
        assert hit_ratio(worst, 20) == ndcg(worst, 20) == mrr(worst, 20) == 0.0

    def test_monotonic_in_k(self):
        rng = np.random.default_rng(1)
        ranks = rng.integers(1, 50, size=100)
        assert hit_ratio(ranks, 5) <= hit_ratio(ranks, 10) <= hit_ratio(ranks, 20)
        assert ndcg(ranks, 5) <= ndcg(ranks, 20)

    def test_metric_report_keys(self):
        report = metric_report(np.array([1, 2, 3]))
        assert set(report) == {"HR@5", "HR@10", "HR@20",
                               "N@5", "N@10", "N@20", "MRR"}

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            hit_ratio(np.array([1]), 0)

    def test_empty_ranks(self):
        assert hit_ratio(np.array([]), 5) == 0.0

    def test_improvement(self):
        ours = {"HR@5": 0.2, "N@5": 0.1}
        base = {"HR@5": 0.1, "N@5": 0.1}
        np.testing.assert_allclose(improvement(ours, base), 50.0)


class TestSignificance:
    def test_welch_matches_scipy(self):
        rng = np.random.default_rng(2)
        a = rng.normal(0.0, 1.0, 40)
        b = rng.normal(0.5, 2.0, 35)
        ours = welch_t_test(a, b)
        ref = scipy_stats.ttest_ind(a, b, equal_var=False)
        np.testing.assert_allclose(ours.statistic, ref.statistic, rtol=1e-10)
        np.testing.assert_allclose(ours.p_value, ref.pvalue, rtol=1e-10)

    def test_paired_matches_scipy(self):
        rng = np.random.default_rng(3)
        a = rng.normal(0.0, 1.0, 30)
        b = a + rng.normal(0.3, 0.5, 30)
        ours = paired_t_test(a, b)
        ref = scipy_stats.ttest_rel(a, b)
        np.testing.assert_allclose(ours.statistic, ref.statistic, rtol=1e-10)
        np.testing.assert_allclose(ours.p_value, ref.pvalue, rtol=1e-10)

    def test_identical_samples_not_significant(self):
        a = np.array([1.0, 2.0, 3.0])
        result = paired_t_test(a, a)
        assert not result.significant()

    def test_clear_difference_significant(self):
        a = np.full(30, 10.0) + np.random.default_rng(4).normal(0, 0.1, 30)
        b = np.zeros(30) + np.random.default_rng(5).normal(0, 0.1, 30)
        assert welch_t_test(a, b).significant(alpha=0.001)

    def test_compare_rank_lists(self):
        better = np.ones(20, dtype=int)          # always rank 1
        worse = np.full(20, 100, dtype=int)
        result = compare_rank_lists(better, worse)
        assert result.significant()
        assert result.statistic > 0

    def test_too_small_sample(self):
        with pytest.raises(ValueError):
            welch_t_test([1.0], [2.0, 3.0])
        with pytest.raises(ValueError):
            paired_t_test([1.0, 2.0], [1.0])


class TestSampledRanks:
    """The sampled-metric comparison utility (bias demonstration)."""

    def _scores(self, n=50, v=200, seed=0):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=(n, v))
        targets = rng.integers(1, v, size=n)
        return scores, targets, rng

    def test_rank_bounds(self):
        from repro.eval.metrics import sampled_ranks
        scores, targets, rng = self._scores()
        ranks = sampled_ranks(scores, targets, num_negatives=20, rng=rng)
        assert ((ranks >= 1) & (ranks <= 21)).all()

    def test_sampled_inflates_metrics(self):
        """The documented bias: HR@K under sampling >= under full ranking."""
        from repro.eval.metrics import sampled_ranks
        scores, targets, rng = self._scores()
        full = ranks_from_scores(scores, targets)
        sampled = sampled_ranks(scores, targets, num_negatives=50, rng=rng)
        assert hit_ratio(sampled, 10) >= hit_ratio(full, 10)

    def test_exclude_mask_respected(self):
        from repro.eval.metrics import sampled_ranks
        rng = np.random.default_rng(0)
        # Give excluded items huge scores: if they were sampled, the
        # target would rank last.
        scores = np.zeros((1, 10))
        scores[0, 5:] = 100.0
        exclude = np.zeros((1, 10), dtype=bool)
        exclude[0, 5:] = True
        ranks = sampled_ranks(scores, np.array([1]), num_negatives=3,
                              rng=rng, exclude=exclude)
        assert ranks[0] <= 4  # ties only among zero-scored sampled items

    def test_too_many_negatives(self):
        from repro.eval.metrics import sampled_ranks
        with pytest.raises(ValueError):
            sampled_ranks(np.zeros((1, 5)), np.array([1]), num_negatives=4)

    def test_invalid_count(self):
        from repro.eval.metrics import sampled_ranks
        with pytest.raises(ValueError):
            sampled_ranks(np.zeros((1, 5)), np.array([1]), num_negatives=0)
