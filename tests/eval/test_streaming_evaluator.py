"""StreamingEvaluator parity: identical ranks and metrics to the
in-memory Evaluator on the same examples, across every scoring path
(vectorized encode, frozen plan, per-batch forward) and any
``score_chunk``."""

import numpy as np
import pytest

from repro.core.ssdrec import SSDRec
from repro.data import (generate, leave_one_out_split,
                        streaming_leave_one_out, write_store_from_dataset)
from repro.eval import Evaluator, StreamingEvaluator, make_evaluator
from repro.models import GRU4Rec, SASRec


@pytest.fixture(scope="module")
def prepared(tmp_path_factory):
    ds = generate("ml-100k", seed=6)
    store = write_store_from_dataset(
        ds, tmp_path_factory.mktemp("streval") / "s")
    memory = leave_one_out_split(ds, max_len=10)
    streaming = streaming_leave_one_out(store, max_len=10)
    model = GRU4Rec(ds.num_items, dim=8, max_len=10,
                    rng=np.random.default_rng(0))
    return ds, memory, streaming, model


@pytest.mark.parametrize("score_chunk", [None, 7, 4096])
def test_vectorized_ranks_bitwise_identical(prepared, score_chunk):
    _, memory, streaming, model = prepared
    want = Evaluator(memory.valid, batch_size=16, max_len=10,
                     score_chunk=score_chunk).ranks(model)
    got = StreamingEvaluator(streaming.valid, batch_size=16, max_len=10,
                             score_chunk=score_chunk).ranks(model)
    np.testing.assert_array_equal(want, got)


def test_frozen_plan_path_identical(prepared):
    _, memory, streaming, model = prepared
    want = Evaluator(memory.valid, batch_size=16, max_len=10,
                     score_chunk=7).ranks(model, fast=True)
    got = StreamingEvaluator(streaming.valid, batch_size=16, max_len=10,
                             score_chunk=7).ranks(model, fast=True)
    np.testing.assert_array_equal(want, got)


def test_forward_batch_path_identical(prepared):
    ds, memory, streaming, _ = prepared
    model = SSDRec(ds, backbone_cls=SASRec, rng=np.random.default_rng(1))
    want = Evaluator(memory.valid, batch_size=16,
                     max_len=10).evaluate(model)
    got = StreamingEvaluator(streaming.valid, batch_size=16,
                             max_len=10).evaluate(model)
    assert want == got


def test_metrics_identical(prepared):
    _, memory, streaming, model = prepared
    want = Evaluator(memory.valid, batch_size=16, max_len=10).evaluate(model)
    got = StreamingEvaluator(streaming.valid, batch_size=16,
                             max_len=10).evaluate(model)
    assert want == got


def test_make_evaluator_dispatch(prepared):
    _, memory, streaming, _ = prepared
    assert isinstance(make_evaluator(memory.valid), Evaluator)
    assert isinstance(make_evaluator(streaming.valid), StreamingEvaluator)
