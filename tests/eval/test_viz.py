"""Tests for the terminal visualization helpers."""

import numpy as np
import pytest

from repro.viz import bar_chart, grouped_bar_chart, line_plot, sparkline


class TestBarChart:
    def test_basic_render(self):
        out = bar_chart({"HSD": 0.5, "SSDRec": 0.25}, width=10)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].count("#") == 10   # max value fills the width
        assert lines[1].count("#") == 5

    def test_title(self):
        out = bar_chart({"a": 1.0}, title="OUP")
        assert out.splitlines()[0] == "OUP"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({"a": -1.0})

    def test_all_zero(self):
        out = bar_chart({"a": 0.0})
        assert "#" not in out


class TestGroupedBars:
    def test_groups_share_scale(self):
        out = grouped_bar_chart(
            {"under": {"HSD": 1.0}, "over": {"HSD": 0.5}}, width=10)
        lines = [l for l in out.splitlines() if "#" in l or "|" in l]
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5


class TestLinePlot:
    def test_markers_present(self):
        out = line_plot([1, 2, 3], {"HR": [0.1, 0.3, 0.2],
                                    "MRR": [0.05, 0.06, 0.04]})
        assert "o" in out and "x" in out
        assert "o=HR" in out and "x=MRR" in out

    def test_log_axis(self):
        out = line_plot([0.01, 0.1, 1, 10], {"s": [1, 2, 3, 4]}, logx=True)
        assert "log10(x)" in out

    def test_log_axis_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            line_plot([0, 1], {"s": [1, 2]}, logx=True)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            line_plot([1, 2], {"s": [1, 2, 3]})

    def test_single_point_rejected(self):
        with pytest.raises(ValueError):
            line_plot([1], {"s": [1]})


class TestSparkline:
    def test_monotone(self):
        out = sparkline([1, 2, 3, 4])
        assert out[0] == "▁" and out[-1] == "█"

    def test_constant(self):
        assert sparkline([2, 2, 2]) == "▁▁▁"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])
