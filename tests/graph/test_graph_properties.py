"""Property-based tests of graph construction over random datasets.

The Sec. III-A construction rules are stated as universally quantified
properties; hypothesis generates random small interaction datasets and
checks that every rule holds on all of them.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import InteractionDataset
from repro.graph import (GraphConfig, build_dissimilar, build_incompatible,
                         build_multi_relation_graph, build_similar,
                         build_transitional)


@st.composite
def datasets(draw):
    num_items = draw(st.integers(3, 12))
    num_users = draw(st.integers(2, 8))
    sequences = [[]]
    for _ in range(num_users):
        length = draw(st.integers(2, 8))
        seq = [draw(st.integers(1, num_items)) for _ in range(length)]
        sequences.append(seq)
    return InteractionDataset(name="hyp", num_users=num_users,
                              num_items=num_items, sequences=sequences)


@settings(max_examples=30, deadline=None)
@given(datasets())
def test_transitional_weights_bounded(ds):
    """Each pair occurrence contributes at most (n-1)/n < 1 per sequence."""
    W = build_transitional(ds)
    max_occurrences = sum(len(s) ** 2 for s in ds.sequences)
    assert W.data.size == 0 or W.data.max() <= max_occurrences
    assert (W.data >= 0).all() if W.data.size else True
    assert W[0].nnz == 0 and W[:, 0].nnz == 0


@settings(max_examples=30, deadline=None)
@given(datasets())
def test_incompatible_never_overlaps_transitional(ds):
    W = build_transitional(ds)
    popular = np.arange(1, ds.num_items + 1)
    inc = build_incompatible(W, popular)
    sym = W + W.T
    overlap = inc.multiply(sym)
    assert overlap.nnz == 0


@settings(max_examples=30, deadline=None)
@given(datasets())
def test_similar_iff_co_interaction(ds):
    A = ds.interaction_matrix()
    sim = build_similar(A)
    binary = (A > 0).astype(float)
    co = (binary @ binary.T).toarray()
    coo = sim.tocoo()
    for i, j in zip(coo.row, coo.col):
        assert co[i, j] > 0


@settings(max_examples=30, deadline=None)
@given(datasets())
def test_dissimilar_disjoint_from_similar_and_cointeraction(ds):
    A = ds.interaction_matrix()
    sim = build_similar(A)
    dis = build_dissimilar(A, sim)
    assert dis.multiply(sim).nnz == 0
    binary = (A > 0).astype(float)
    co = (binary @ binary.T).toarray()
    coo = dis.tocoo()
    for i, j in zip(coo.row, coo.col):
        assert co[i, j] == 0


@settings(max_examples=15, deadline=None)
@given(datasets())
def test_full_graph_validates(ds):
    graph = build_multi_relation_graph(ds, GraphConfig(max_neighbors=5))
    graph.validate()
    counts = graph.relation_counts()
    assert all(v >= 0 for v in counts.values())
