"""Tests for multi-relation graph construction (Sec. III-A invariants)."""

import numpy as np
import pytest
from scipy import sparse

from repro.data import InteractionDataset, generate
from repro.graph import (GraphConfig, build_dissimilar, build_incompatible,
                         build_multi_relation_graph, build_similar,
                         build_transitional, prune_top_k)


def make_dataset(sequences, num_items=None):
    num_items = num_items or max((max(s) for s in sequences if s), default=1)
    return InteractionDataset(
        name="toy", num_users=len(sequences), num_items=num_items,
        sequences=[[]] + [list(s) for s in sequences])


class TestTransitional:
    def test_direction_and_existence(self):
        ds = make_dataset([[1, 2, 3]])
        W = build_transitional(ds)
        assert W[1, 2] > 0 and W[2, 3] > 0 and W[1, 3] > 0
        assert W[2, 1] == 0 and W[3, 1] == 0

    def test_weight_formula(self):
        # Sequence [1, 2]: n=2, Dis=1 -> weight (2-1)/2 = 0.5
        ds = make_dataset([[1, 2]])
        W = build_transitional(ds)
        np.testing.assert_allclose(W[1, 2], 0.5)

    def test_closer_pairs_weigh_more(self):
        ds = make_dataset([[1, 2, 3]])
        W = build_transitional(ds)
        assert W[1, 2] > W[1, 3]

    def test_repeats_accumulate(self):
        single = build_transitional(make_dataset([[1, 2]]))
        double = build_transitional(make_dataset([[1, 2], [1, 2]]))
        np.testing.assert_allclose(double[1, 2], 2 * single[1, 2])

    def test_window_limits_distance(self):
        ds = make_dataset([[1, 2, 3, 4, 5]])
        W = build_transitional(ds, window=1)
        assert W[1, 2] > 0
        assert W[1, 3] == 0

    def test_self_transitions_ignored(self):
        ds = make_dataset([[1, 1, 2]])
        W = build_transitional(ds)
        assert W[1, 1] == 0

    def test_padding_row_empty(self):
        ds = make_dataset([[1, 2, 3]])
        W = build_transitional(ds)
        assert W[0].nnz == 0 and W[:, 0].nnz == 0


class TestPruneTopK:
    def test_keeps_heaviest(self):
        mat = sparse.csr_matrix(np.array([[0, 3.0, 1.0, 2.0]]))
        out = prune_top_k(mat, 2)
        assert out.nnz == 2
        assert out[0, 1] == 3.0 and out[0, 3] == 2.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            prune_top_k(sparse.csr_matrix((2, 2)), 0)


class TestIncompatible:
    def _weights(self):
        # Items 1 and 2 both transition to 3 but never to each other.
        ds = make_dataset([[1, 3], [2, 3]], num_items=3)
        W = build_transitional(ds)
        return ds, W

    def test_common_context_no_direct_edge(self):
        ds, W = self._weights()
        inc = build_incompatible(W, popular_items=np.array([1, 2, 3]))
        assert inc[1, 2] > 0
        assert inc[1, 2] == inc[2, 1]  # symmetric

    def test_direct_transition_disqualifies(self):
        # 1->2 directly, and both relate to 3.
        ds = make_dataset([[1, 2], [1, 3], [2, 3]], num_items=3)
        W = build_transitional(ds)
        inc = build_incompatible(W, popular_items=np.array([1, 2, 3]))
        assert inc[1, 2] == 0

    def test_longtail_excluded(self):
        ds, W = self._weights()
        inc = build_incompatible(W, popular_items=np.array([1, 3]))
        assert inc[1, 2] == 0  # item 2 not popular -> no edge

    def test_weight_is_sum_of_transitional(self):
        ds, W = self._weights()
        inc = build_incompatible(W, popular_items=np.array([1, 2, 3]))
        expected = (W[1, 3] + W[3, 1]) + (W[2, 3] + W[3, 2])
        np.testing.assert_allclose(inc[1, 2], expected)

    def test_empty_popular_set(self):
        _, W = self._weights()
        inc = build_incompatible(W, popular_items=np.array([], dtype=int))
        assert inc.nnz == 0

    def test_out_of_range_popular_rejected(self):
        _, W = self._weights()
        with pytest.raises(ValueError):
            build_incompatible(W, popular_items=np.array([99]))


class TestUserRelations:
    def _interactions(self):
        # u1: items {1, 2}; u2: items {2, 3}; u3: items {4}
        ds = make_dataset([[1, 2], [2, 3], [4]], num_items=4)
        return ds.interaction_matrix()

    def test_similar_via_co_interaction(self):
        sim = build_similar(self._interactions())
        assert sim[1, 2] > 0
        assert sim[1, 3] == 0 and sim[2, 3] == 0
        np.testing.assert_allclose(sim[1, 2], sim[2, 1])

    def test_similar_weight_normalized(self):
        sim = build_similar(self._interactions())
        # numerator: w_1,2 + w_2,2 = 1 + 1; denominator: 2 + 2
        np.testing.assert_allclose(sim[1, 2], 0.5)

    def test_dissimilar_via_common_similar_user(self):
        # u1-{1,2}, u2-{2,3}, u3-{3,4}: u1~u2, u2~u3, u1/u3 no co-interaction
        ds = make_dataset([[1, 2], [2, 3], [3, 4]], num_items=4)
        A = ds.interaction_matrix()
        sim = build_similar(A)
        dis = build_dissimilar(A, sim)
        assert dis[1, 3] > 0
        np.testing.assert_allclose(dis[1, 3], dis[3, 1])
        # Similar users are never dissimilar.
        assert dis[1, 2] == 0

    def test_no_common_similar_no_edge(self):
        dis = build_dissimilar(self._interactions(),
                               build_similar(self._interactions()))
        # u3 shares no similar user with anyone.
        assert dis[1, 3] == 0 and dis[2, 3] == 0

    def test_active_user_filter(self):
        A = self._interactions()
        sim = build_similar(A, active_users=np.array([1]))
        # Only u1 active: co-interaction requires both rows -> no edges.
        assert sim.nnz == 0


class TestFullGraph:
    def test_build_and_validate_on_synthetic(self):
        ds = generate("beauty", seed=0, scale=0.3)
        graph = build_multi_relation_graph(ds)
        graph.validate()  # raises on violated invariants
        counts = graph.relation_counts()
        assert counts["transitional"] > 0
        assert counts["similar"] > 0
        assert counts["interacted"] == sum(
            len(set(s)) for s in ds.sequences)

    def test_max_neighbors_bounds_degree(self):
        ds = generate("beauty", seed=0, scale=0.3)
        config = GraphConfig(max_neighbors=5)
        graph = build_multi_relation_graph(ds, config)
        trans = graph.transitional
        row_counts = np.diff(trans.indptr)
        assert row_counts.max() <= 5

    def test_networkx_export(self):
        ds = generate("beauty", seed=0, scale=0.2)
        graph = build_multi_relation_graph(ds)
        G = graph.to_networkx()
        assert G.number_of_nodes() == ds.num_users + ds.num_items
        relations = {d["relation"] for _, _, d in G.edges(data=True)}
        assert "transitional" in relations and "interacted" in relations

    def test_deterministic(self):
        ds = generate("beauty", seed=0, scale=0.3)
        g1 = build_multi_relation_graph(ds)
        g2 = build_multi_relation_graph(ds)
        assert (g1.transitional != g2.transitional).nnz == 0
        assert (g1.similar_users != g2.similar_users).nnz == 0
