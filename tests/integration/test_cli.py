"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train", "--model", "SASRec"])
        assert args.dataset == "beauty"
        assert args.epochs == 10

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--model", "Nope"])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig1",
                                          "--scale", "smoke"])
        assert args.name == "fig1" and args.scale == "smoke"


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "ml-100k" in out and "sparsity" in out

    def test_train_and_checkpoint(self, tmp_path, capsys):
        ckpt = tmp_path / "model.npz"
        code = main(["train", "--model", "GRU4Rec", "--dataset", "beauty",
                     "--dim", "8", "--max-len", "8", "--epochs", "1",
                     "--scale", "0.25", "--save", str(ckpt)])
        assert code == 0
        assert ckpt.exists()
        out = capsys.readouterr().out
        assert "test:" in out

    def test_train_ssdrec(self, capsys):
        code = main(["train", "--model", "SSDRec", "--dataset", "beauty",
                     "--dim", "8", "--max-len", "8", "--epochs", "1",
                     "--scale", "0.25"])
        assert code == 0
        assert "SSDRec" in capsys.readouterr().out

    def test_experiment_smoke(self, capsys):
        assert main(["experiment", "table2", "--scale", "smoke"]) == 0
        assert "Table II" in capsys.readouterr().out
