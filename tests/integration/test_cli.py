"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train", "--model", "SASRec"])
        assert args.dataset == "beauty"
        assert args.epochs == 10

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--model", "Nope"])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig1",
                                          "--scale", "smoke"])
        assert args.name == "fig1" and args.scale == "smoke"


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "ml-100k" in out and "sparsity" in out

    def test_train_and_checkpoint(self, tmp_path, capsys):
        ckpt = tmp_path / "model.npz"
        code = main(["train", "--model", "GRU4Rec", "--dataset", "beauty",
                     "--dim", "8", "--max-len", "8", "--epochs", "1",
                     "--scale", "0.25", "--save", str(ckpt)])
        assert code == 0
        assert ckpt.exists()
        out = capsys.readouterr().out
        assert "test:" in out

    def test_train_ssdrec(self, capsys):
        code = main(["train", "--model", "SSDRec", "--dataset", "beauty",
                     "--dim", "8", "--max-len", "8", "--epochs", "1",
                     "--scale", "0.25"])
        assert code == 0
        assert "SSDRec" in capsys.readouterr().out

    def test_experiment_smoke(self, capsys):
        assert main(["experiment", "table2", "--scale", "smoke"]) == 0
        assert "Table II" in capsys.readouterr().out

    def test_eventlog_append_verify_replay(self, tmp_path, capsys):
        events = tmp_path / "events.csv"
        events.write_text("1,10,5\n2,20,6\n1,30,7\n")
        log_dir = str(tmp_path / "log")
        assert main(["eventlog", log_dir, "append",
                     "--events", str(events)]) == 0
        assert "appended 3 events" in capsys.readouterr().out
        assert main(["eventlog", log_dir, "verify"]) == 0
        assert "3 events verified" in capsys.readouterr().out
        assert main(["eventlog", log_dir, "replay",
                     "--out", str(tmp_path / "store")]) == 0
        assert "store written" in capsys.readouterr().out

    def test_eventlog_append_requires_events(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["eventlog", str(tmp_path / "log"), "append"])
