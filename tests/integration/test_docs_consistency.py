"""Consistency checks between documentation and code.

Docs drift silently; these tests pin the claims that are cheap to verify
mechanically (registries match tables, examples exist, CLI choices match
the experiment modules).
"""

from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


class TestReadmeClaims:
    def test_examples_listed_exist(self):
        readme = (REPO / "README.md").read_text()
        for script in ("quickstart.py", "plugin_denoising.py",
                       "noise_robustness.py", "case_study_explain.py",
                       "dataset_analysis.py", "hyperparameter_search.py"):
            assert script in readme
            assert (REPO / "examples" / script).exists(), script

    def test_bench_files_listed_exist(self):
        readme = (REPO / "README.md").read_text()
        for name in ("bench_table2_datasets", "bench_table3_backbones",
                     "bench_table4_denoisers", "bench_table5_ablation",
                     "bench_table6_efficiency", "bench_fig1_oup",
                     "bench_fig4_case_study", "bench_fig5_tau"):
            assert name in readme
            assert (REPO / "benchmarks" / f"{name}.py").exists(), name


class TestCliMatchesExperiments:
    def test_every_cli_experiment_has_run_and_render(self):
        from repro.cli import EXPERIMENTS
        for name, module in EXPERIMENTS.items():
            assert callable(module.run), name
            assert callable(module.render), name

    def test_cli_models_cover_backbones_and_denoisers(self):
        from repro.denoise import DENOISERS
        from repro.models import BACKBONES
        from repro.registry import available_models
        models = set(available_models())
        assert set(BACKBONES) <= models
        assert set(DENOISERS) <= models
        assert "SSDRec" in models


class TestDesignDocInventory:
    def test_modules_named_in_design_exist(self):
        design = (REPO / "DESIGN.md").read_text()
        for module_path in ("repro/nn/tensor.py", "repro/core/encoder.py",
                            "repro/core/augmentation.py",
                            "repro/core/hierarchical.py",
                            "repro/graph/multi_relation.py"):
            stem = module_path.split("/")[-1].removesuffix(".py")
            assert stem in design, stem
            assert (REPO / "src" / module_path).exists(), module_path

    def test_equation_doc_references_real_symbols(self):
        import repro.core as core
        import repro.graph as graph
        doc = (REPO / "docs" / "equations.md").read_text()
        for symbol in ("GlobalRelationEncoder", "SelfAugmentation",
                       "HierarchicalDenoising", "PairConv"):
            assert symbol in doc
            assert hasattr(core, symbol), symbol
        assert "build_transitional" in doc
        assert hasattr(graph, "build_transitional")
