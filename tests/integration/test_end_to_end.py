"""End-to-end learning-outcome tests on structured synthetic data.

Unlike the smoke tests, these verify that models actually *learn*: trained
accuracy must beat both random ranking and the untrained model.
"""

import numpy as np
import pytest

from repro.core import SSDRec, SSDRecConfig
from repro.data import generate, inject_noise, leave_one_out_split
from repro.denoise import HSD
from repro.eval import Evaluator, compare_rank_lists
from repro.models import GRU4Rec, SASRec
from repro.train import TrainConfig, Trainer

MAX_LEN = 12


@pytest.fixture(scope="module")
def prepared():
    dataset = generate("beauty", seed=0, scale=0.6)
    split = leave_one_out_split(dataset, max_len=MAX_LEN,
                                augment_prefixes=True)
    return dataset, split


def train(model, split, epochs=8):
    return Trainer(model, split,
                   TrainConfig(epochs=epochs, batch_size=128,
                               patience=10, seed=0)).fit()


class TestLearningOutcomes:
    def test_backbone_beats_random(self, prepared):
        dataset, split = prepared
        model = SASRec(num_items=dataset.num_items, dim=16, max_len=MAX_LEN,
                       rng=np.random.default_rng(0))
        evaluator = Evaluator(split.test, max_len=MAX_LEN)
        train(model, split)
        hr20 = evaluator.evaluate(model)["HR@20"]
        random_hr20 = 20 / dataset.num_items
        assert hr20 > 2 * random_hr20, (
            f"trained HR@20 {hr20:.3f} vs random {random_hr20:.3f}")

    def test_training_improves_over_untrained(self, prepared):
        dataset, split = prepared
        model = GRU4Rec(num_items=dataset.num_items, dim=16, max_len=MAX_LEN,
                        rng=np.random.default_rng(0))
        evaluator = Evaluator(split.test, max_len=MAX_LEN)
        before = evaluator.ranks(model)
        train(model, split)
        after = evaluator.ranks(model)
        result = compare_rank_lists(after, before)
        assert after.mean() < before.mean()
        assert result.significant(alpha=0.05)

    def test_ssdrec_learns(self, prepared):
        dataset, split = prepared
        model = SSDRec(dataset, backbone_cls=GRU4Rec,
                       config=SSDRecConfig(dim=16, max_len=MAX_LEN),
                       rng=np.random.default_rng(0))
        evaluator = Evaluator(split.test, max_len=MAX_LEN)
        train(model, split)
        hr20 = evaluator.evaluate(model)["HR@20"]
        assert hr20 > 2 * (20 / dataset.num_items)

    def test_denoiser_engages_on_noisy_data(self):
        """After training on noisy data, the HSD gate must actually drop
        a nonzero but non-total fraction of items."""
        clean = generate("beauty", seed=1, scale=0.6, noise_rate=0.0)
        noisy = inject_noise(clean, ratio=0.25, seed=1)
        split = leave_one_out_split(noisy.dataset, max_len=MAX_LEN,
                                    augment_prefixes=True)
        model = HSD(num_items=noisy.dataset.num_items, dim=16,
                    max_len=MAX_LEN, rng=np.random.default_rng(0))
        train(model, split)
        ratio = model.dropped_ratio(noisy.dataset.sequences[1:])
        assert 0.0 < ratio < 0.9, f"drop ratio {ratio}"

    def test_determinism_same_seed(self, prepared):
        dataset, split = prepared
        metrics = []
        for _ in range(2):
            model = GRU4Rec(num_items=dataset.num_items, dim=16,
                            max_len=MAX_LEN, rng=np.random.default_rng(7))
            train(model, split, epochs=2)
            evaluator = Evaluator(split.test, max_len=MAX_LEN)
            metrics.append(evaluator.evaluate(model)["HR@20"])
        # Dropout draws from the model rng; same seed -> identical runs.
        assert metrics[0] == metrics[1]
