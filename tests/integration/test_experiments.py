"""Integration tests: every experiment runner executes at smoke scale.

These exercise the exact code paths behind the benchmark harness, with
minimal epochs — checking plumbing and output contracts, not effect sizes.
"""

import numpy as np
import pytest

from repro.experiments import (SCALES, fig1_oup, fig4_case_study, fig5_tau,
                               table2_datasets, table3_backbones,
                               table4_denoisers, table5_ablation,
                               table6_efficiency)

SMOKE = SCALES["smoke"]


class TestScaleConfig:
    def test_default_scale_env(self, monkeypatch):
        from repro.experiments import default_scale
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert default_scale().name == "smoke"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(KeyError):
            default_scale()

    def test_max_len_longer_for_movielens(self):
        from repro.experiments import max_len_for
        assert max_len_for("ml-1m", SMOKE) > max_len_for("beauty", SMOKE)


class TestTable2:
    def test_run_and_render(self):
        rows = table2_datasets.run(SMOKE)
        assert set(rows) == {"ml-100k", "ml-1m", "beauty", "sports", "yelp"}
        for row in rows.values():
            assert {"paper", "measured"} <= set(row)
        text = table2_datasets.render(rows)
        assert "sparsity" in text


class TestTable3:
    def test_single_cell(self):
        res = table3_backbones.run_one("GRU4Rec", "beauty", SMOKE)
        assert {"without", "with", "improvement"} <= set(res)
        assert np.isfinite(res["improvement"])

    def test_run_restricted(self):
        results = table3_backbones.run(SMOKE, backbones=["STAMP"],
                                       datasets=["beauty"])
        assert set(results) == {"beauty"}
        assert set(results["beauty"]) == {"STAMP"}
        text = table3_backbones.render(results)
        assert "STAMP" in text and "paper" in text


class TestTable4:
    def test_run_restricted(self):
        results = table4_denoisers.run(SMOKE, methods=("HSD", "SSDRec"),
                                       datasets=["beauty"])
        per = results["beauty"]
        assert {"HSD", "SSDRec", "improvement_vs_best"} <= set(per)
        text = table4_denoisers.render(results)
        assert "SSDRec improvement" in text

    def test_build_every_method(self):
        from repro.experiments.common import prepare
        from repro.experiments.table4_denoisers import ALL_METHODS
        from repro.registry import build, model_spec
        prepared = prepare("beauty", SMOKE)
        for name in ALL_METHODS:
            model = build(model_spec(name), prepared, SMOKE, rng=0)
            assert hasattr(model, "loss") and hasattr(model, "forward")


class TestTable5:
    def test_ablation_variants(self):
        results = table5_ablation.run(SMOKE, profile="beauty")
        assert set(results) == {"w/o SSDRec-1", "w/o SSDRec-2",
                                "w/o SSDRec-3", "HSD", "SSDRec"}
        for row in results.values():
            assert set(row) == set(table5_ablation.TABLE5_METRICS)
        assert "paper" in table5_ablation.render(results)

    def test_extension_variants_construct(self):
        from repro.experiments.common import prepare
        from repro.experiments.table5_ablation import _extension_variants
        from repro.registry import build
        prepared = prepare("beauty", SMOKE)
        variants = _extension_variants()
        assert len(variants) == 6
        assert any("f_den" in name for name in variants)
        for spec in variants.values():
            model = build(spec, prepared, SMOKE, rng=0)
            assert hasattr(model, "loss")


class TestTable6:
    def test_timings_positive(self):
        results = table6_efficiency.run(SMOKE, methods=("HSD", "SSDRec"),
                                        datasets=["beauty"])
        for mode in ("training", "inference"):
            for per in results[mode].values():
                assert per["beauty"] > 0
        assert "training" in table6_efficiency.render(results)


class TestFig1:
    def test_ratios_and_counts(self):
        results = fig1_oup.run(SMOKE, methods=("HSD",), noise_ratio=0.2)
        row = results["HSD"]
        assert row["total_noise"] > 0 and row["total_raw"] > 0
        assert 0 <= row["under_denoising"] <= 1
        assert "under-denoise" in fig1_oup.render(results)

    def test_unknown_method_rejected(self):
        with pytest.raises(KeyError):
            fig1_oup.run(SMOKE, methods=("Nope",))


class TestFig4:
    def test_trace_contract(self):
        result = fig4_case_study.run(SMOKE, profile="beauty")
        trace = result["trace"]
        assert {"raw_score", "augmented_score", "denoised_score",
                "inserted_items", "removed_items"} <= set(trace)
        assert {"SSDRec", "HSD"} == set(result["dropped_ratio"])
        assert "case study" in fig4_case_study.render(result)


class TestFig5:
    def test_sweep(self):
        results = fig5_tau.run(SMOKE, profile="beauty", taus=(0.5, 5.0))
        assert set(results) == {0.5, 5.0}
        for row in results.values():
            assert {"HR@20", "N@20", "MRR"} == set(row)
        assert "tau" in fig5_tau.render(results)


class TestSignificanceRuns:
    def test_two_seed_run(self):
        from repro.experiments import significance_runs
        result = significance_runs.run(SMOKE, profile="beauty",
                                       seeds=(0, 1))
        assert len(result["ssdrec_hr20"]) == 2
        assert all(0 <= p <= 1 for p in result["paired_pvalues"])
        assert 0 <= result["cross_seed_p"] <= 1
        text = significance_runs.render(result)
        assert "Welch" in text

    def test_single_seed_rejected(self):
        from repro.experiments import significance_runs
        with pytest.raises(ValueError):
            significance_runs.run(SMOKE, seeds=(0,))


class TestNoiseSweep:
    def test_single_level(self):
        from repro.experiments import ext_noise_sweep
        results = ext_noise_sweep.run(SMOKE, noise_levels=(0.2,))
        assert set(results) == {0.2}
        assert set(results[0.2]) == {"HSD", "SSDRec"}
        assert "noise-level sweep" in ext_noise_sweep.render(results)
