"""Tests for the one-command experiment orchestrator."""

import pytest

from repro.experiments.full_run import RUNNERS, main, run_all


class TestFullRun:
    def test_single_experiment(self, tmp_path, capsys):
        timings = run_all(scale_name="smoke", only=["table2"],
                          results_dir=tmp_path / "results",
                          report_path=tmp_path / "EXPERIMENTS.md")
        assert set(timings) == {"table2"}
        assert (tmp_path / "results" / "table2_datasets.txt").exists()
        report = (tmp_path / "EXPERIMENTS.md").read_text()
        assert "Table II" in report

    def test_second_invocation_fully_cached(self, tmp_path, capsys):
        # full_run --only table3 twice: the second pass must train
        # nothing — every run comes back from the store.
        from repro.runs import default_store
        for _ in range(2):
            run_all(scale_name="smoke", only=["table3"],
                    results_dir=tmp_path / "results", report_path=None)
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines()
                 if line.startswith("[table3]")]
        assert len(lines) == 2
        assert "run store: 0 trained" in lines[1]
        store = default_store()
        assert store.stats()["misses"] == 0
        assert store.stats()["hits"] > 0
        assert (tmp_path / "results" / "table3_backbones.txt").exists()

    def test_unknown_experiment_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            run_all(scale_name="smoke", only=["bogus"],
                    results_dir=tmp_path)

    def test_runner_registry_complete(self):
        # Every CLI experiment is runnable through full_run too.
        from repro.cli import EXPERIMENTS
        assert set(EXPERIMENTS) == set(RUNNERS)

    def test_main_cli(self, tmp_path, capsys):
        code = main(["--scale", "smoke", "--only", "table2",
                     "--results-dir", str(tmp_path), "--no-report"])
        assert code == 0
        assert "done in" in capsys.readouterr().out
