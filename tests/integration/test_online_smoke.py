"""End-to-end online-learning gate: ``scripts/online_smoke.py`` must pass.

One reduced-trial run of the full loop — event-log ingestion, memoized
fine-tune vs the full-retrain oracle, incremental serving across the
window rollover, and a mid-burst hot-swap with a worker hard-killed at
the swap prepare site — plus a sanity check of the report it writes.
"""

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
SCRIPT = REPO_ROOT / "scripts" / "online_smoke.py"


class TestOnlineSmoke:
    def test_gate_passes_and_writes_report(self, tmp_path):
        report = tmp_path / "BENCH_online.json"
        proc = subprocess.run(
            [sys.executable, str(SCRIPT), "--trials", "1",
             "--json", str(report)],
            capture_output=True, text=True, cwd=REPO_ROOT)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "OK" in proc.stdout

        payload = json.loads(report.read_text())
        assert all(w["matches_oracle"] for w in payload["stream"]["waves"])
        assert payload["stream"]["cache_hits"] == len(
            payload["stream"]["waves"])
        assert payload["incremental"]["rolling_hits_at_max_len"] > 0
        assert payload["incremental"]["kv_prefix_hits"] > 0
        assert payload["incremental"]["incremental_failures"] == 0
        assert payload["swap"]["dropped_requests"] == 0
        assert payload["swap"]["stale_answers"] == 0
        assert payload["swap"]["worker_restarts_absorbed"] >= 1
