"""Integrity checks on the transcribed paper numbers and table formatting.

These guard the reference data the benchmark harness compares against:
every table has the full metric block, the paper's internal consistency
holds (e.g. HR grows with K; SSDRec rows dominate in Table IV), and the
formatting helpers render what they are given.
"""

import numpy as np

from repro.experiments.common import (METRIC_COLUMNS, format_table,
                                      paper_vs_measured, ssdrec_config)
from repro.experiments.config import SCALES
from repro.experiments.paper_numbers import (CASE_STUDY, DROPPED_RATIOS,
                                             TABLE2, TABLE3, TABLE4, TABLE5,
                                             TABLE6, TAU_SWEEP)

DATASETS = ("ml-100k", "ml-1m", "beauty", "sports", "yelp")
BACKBONES = ("GRU4Rec", "NARM", "STAMP", "Caser", "SASRec", "BERT4Rec")
DENOISERS = ("DSAN", "FMLP-Rec", "HSD", "DCRec", "STEAM", "SSDRec")


class TestTable2Integrity:
    def test_all_datasets_present(self):
        assert set(TABLE2) == set(DATASETS)

    def test_ml_sequences_longer(self):
        assert TABLE2["ml-1m"]["avg_len"] > 10 * TABLE2["beauty"]["avg_len"]


class TestTable3Integrity:
    def test_complete_grid(self):
        for dataset in DATASETS:
            assert set(TABLE3[dataset]) == set(BACKBONES)
            for rows in TABLE3[dataset].values():
                for variant in ("without", "with"):
                    assert set(rows[variant]) == set(METRIC_COLUMNS)

    def test_hr_monotone_in_k(self):
        for dataset in DATASETS:
            for rows in TABLE3[dataset].values():
                for variant in ("without", "with"):
                    r = rows[variant]
                    assert r["HR@5"] <= r["HR@10"] <= r["HR@20"]

    def test_ssdrec_improves_every_cell(self):
        """The paper's headline: w >= w/o on HR@20 for all 30 cells."""
        for dataset in DATASETS:
            for model, rows in TABLE3[dataset].items():
                assert rows["with"]["HR@20"] >= rows["without"]["HR@20"], \
                    (dataset, model)


class TestTable4Integrity:
    def test_complete_grid(self):
        for dataset in DATASETS:
            assert set(TABLE4[dataset]) == set(DENOISERS)

    def test_ssdrec_best_on_every_metric(self):
        for dataset in DATASETS:
            rows = TABLE4[dataset]
            for metric in METRIC_COLUMNS:
                best = max(rows[m][metric] for m in DENOISERS)
                assert rows["SSDRec"][metric] == best, (dataset, metric)

    def test_table3_table4_ssdrec_rows_consistent(self):
        """SSDRec's Table IV row is the SASRec-backboned configuration
        (matches Table III's SASRec 'with' column)."""
        for dataset in DATASETS:
            t4 = TABLE4[dataset]["SSDRec"]
            t3_sasrec = TABLE3[dataset]["SASRec"]["with"]
            np.testing.assert_allclose(t4["HR@20"], t3_sasrec["HR@20"])


class TestTable5Integrity:
    def test_full_model_dominates(self):
        for variant, row in TABLE5.items():
            if variant == "SSDRec":
                continue
            assert TABLE5["SSDRec"]["HR@20"] > row["HR@20"], variant

    def test_stage1_most_crucial(self):
        drops = {v: TABLE5["SSDRec"]["HR@20"] - row["HR@20"]
                 for v, row in TABLE5.items() if v.startswith("w/o")}
        assert max(drops, key=drops.get) == "w/o SSDRec-1"


class TestTable6Integrity:
    def test_ssdrec_trains_slower_than_hsd(self):
        for dataset in DATASETS:
            assert TABLE6["training"]["SSDRec"][dataset] > \
                TABLE6["training"]["HSD"][dataset]

    def test_dropped_ratios_in_paper_range(self):
        for ratio in DROPPED_RATIOS.values():
            assert 0.2 < ratio < 0.4


class TestCaseStudyIntegrity:
    def test_score_progression(self):
        assert CASE_STUDY["denoised_score"] > CASE_STUDY["hsd_score"] \
            > CASE_STUDY["raw_score"]
        assert abs(CASE_STUDY["augmented_score"]
                   - CASE_STUDY["raw_score"]) < 0.05

    def test_tau_sweep_matches_paper_grid(self):
        assert TAU_SWEEP == (1e-2, 1e-1, 1.0, 10.0, 1e2, 1e3)


class TestFormatting:
    def test_format_table_renders_all_rows(self):
        rows = [("a", {m: 0.1 for m in METRIC_COLUMNS}),
                ("bb", {m: 0.2 for m in METRIC_COLUMNS})]
        text = format_table("T", rows)
        assert "a" in text and "bb" in text and "HR@20" in text

    def test_format_table_missing_metric_nan(self):
        text = format_table("T", [("x", {"HR@5": 0.5})])
        assert "nan" in text

    def test_paper_vs_measured(self):
        row = {m: 0.5 for m in METRIC_COLUMNS}
        text = paper_vs_measured("T", row, row)
        assert "paper" in text and "measured" in text


class TestSSDRecConfigHelper:
    def test_thresholds_scale_with_max_len(self):
        scale = SCALES["quick"]
        short = ssdrec_config(scale, max_len=10)
        long = ssdrec_config(scale, max_len=40)
        assert short.augment_threshold < long.augment_threshold
        assert short.target_drop_rate == long.target_drop_rate == 0.2

    def test_overrides_win(self):
        cfg = ssdrec_config(SCALES["smoke"], max_len=10, initial_tau=9.0,
                            augment_threshold=3)
        assert cfg.initial_tau == 9.0
        assert cfg.augment_threshold == 3
