"""Render-path tests: every experiment's render() embeds its visualization."""

import numpy as np

from repro.experiments import ext_noise_sweep, fig1_oup, fig5_tau


class TestFig1Render:
    def _results(self):
        return {
            "HSD": {"under_denoising": 0.9, "over_denoising": 0.1,
                    "kept_noise": 9, "total_noise": 10,
                    "dropped_raw": 5, "total_raw": 50},
            "SSDRec": {"under_denoising": 0.7, "over_denoising": 0.05,
                       "kept_noise": 7, "total_noise": 10,
                       "dropped_raw": 2, "total_raw": 50},
        }

    def test_contains_bars_and_numbers(self):
        text = fig1_oup.render(self._results())
        assert "under-denoising" in text
        assert "#" in text  # the bar chart
        assert "0.900" in text and "0.700" in text


class TestFig5Render:
    def test_contains_line_plot(self):
        results = {
            0.1: {"HR@20": 0.10, "N@20": 0.05, "MRR": 0.02},
            1.0: {"HR@20": 0.20, "N@20": 0.09, "MRR": 0.04},
            10.0: {"HR@20": 0.15, "N@20": 0.07, "MRR": 0.03},
        }
        text = fig5_tau.render(results)
        assert "tau sweep" in text
        assert "log10(x)" in text
        assert "o=HR@20" in text

    def test_single_point_skips_plot(self):
        results = {1.0: {"HR@20": 0.2, "N@20": 0.1, "MRR": 0.05}}
        text = fig5_tau.render(results)
        assert "tau sweep" not in text  # not enough points to plot


class TestNoiseSweepRender:
    def test_rows_per_level_and_method(self):
        results = {
            0.1: {"HSD": {"HR@20": 0.5, "under_denoising": 0.8,
                          "over_denoising": 0.1},
                  "SSDRec": {"HR@20": 0.6, "under_denoising": 0.7,
                             "over_denoising": 0.05}},
        }
        text = ext_noise_sweep.render(results)
        assert "10%" in text
        assert "0.5000" in text and "0.6000" in text
