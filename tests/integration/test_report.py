"""Tests for the EXPERIMENTS.md report generator."""

from pathlib import Path

from repro.experiments.report import SECTIONS, build_report, main


class TestReport:
    def test_includes_existing_results(self, tmp_path):
        (tmp_path / "fig1_oup.txt").write_text("UNDER 0.1 OVER 0.2")
        report = build_report(tmp_path, scale="quick")
        assert "UNDER 0.1 OVER 0.2" in report
        assert "scale: ``quick``" in report

    def test_flags_missing_sections(self, tmp_path):
        report = build_report(tmp_path, scale="smoke")
        assert "Missing sections" in report
        for name, _, _ in SECTIONS:
            assert name in report

    def test_main_writes_file(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "table2_datasets.txt").write_text("stats here")
        out = tmp_path / "EXPERIMENTS.md"
        assert main([str(results), str(out)]) == 0
        assert "stats here" in out.read_text()

    def test_every_section_has_commentary(self):
        for name, title, commentary in SECTIONS:
            assert len(commentary) > 40, f"{name} lacks commentary"
            assert title
