"""End-to-end chaos gate: ``scripts/resilience_smoke.py`` must pass.

One reduced-trial run of the full harness — subprocess hard-kill with
resume, randomized run-store faults, and faulted serving bursts — and a
sanity check of the machine-readable report it writes.
"""

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
SCRIPT = REPO_ROOT / "scripts" / "resilience_smoke.py"


class TestResilienceSmoke:
    def test_gate_passes_and_writes_report(self, tmp_path):
        report = tmp_path / "BENCH_resilience.json"
        proc = subprocess.run(
            [sys.executable, str(SCRIPT), "--trials", "1",
             "--json", str(report)],
            capture_output=True, text=True, cwd=REPO_ROOT)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "OK" in proc.stdout

        payload = json.loads(report.read_text())
        assert payload["resume"]["kill_exit_code"] == 70
        assert payload["resume"]["resume_point_after_kill"]
        assert payload["resume"]["resumed_matches_uninterrupted"]
        assert payload["runstore"]["corrupted_entries_served"] == 0
        assert all(t["matches_reference"]
                   for t in payload["runstore"]["trials"])
        assert payload["serving"]["dropped_requests"] == 0
        assert payload["serving"]["unrecovered_requests"] == 0
