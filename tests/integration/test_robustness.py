"""Robustness tests: degenerate datasets, extreme inputs, edge shapes.

These inject the failure modes a downstream user will eventually hit —
tiny or degenerate datasets, batch size 1, all-identical sequences,
extreme learning rates — and assert the library degrades gracefully
(defined behaviour or a clear exception, never NaNs or silent corruption).
"""

import numpy as np
import pytest

from repro.core import SSDRec, SSDRecConfig
from repro.data import (InteractionDataset, generate, inject_noise,
                        leave_one_out_split)
from repro.data.batching import Batch, DataLoader, pad_sequences
from repro.denoise import DSAN, HSD
from repro.graph import build_multi_relation_graph
from repro.models import GRU4Rec, SASRec
from repro.train import TrainConfig, Trainer


def tiny_dataset(sequences, num_items=None):
    num_items = num_items or max(max(s) for s in sequences if s)
    return InteractionDataset(
        name="tiny", num_users=len(sequences), num_items=num_items,
        sequences=[[]] + [list(s) for s in sequences])


class TestDegenerateDatasets:
    def test_single_user_dataset(self):
        ds = tiny_dataset([[1, 2, 3, 1, 2]], num_items=3)
        split = leave_one_out_split(ds, max_len=5)
        assert len(split.train) == len(split.test) == 1
        model = GRU4Rec(num_items=3, dim=4, max_len=5,
                        rng=np.random.default_rng(0))
        result = Trainer(model, split,
                         TrainConfig(epochs=1, batch_size=4)).fit()
        assert np.isfinite(result.history[0]["loss"])

    def test_all_identical_sequences(self):
        ds = tiny_dataset([[1, 2, 3, 4]] * 4, num_items=4)
        graph = build_multi_relation_graph(ds)
        graph.validate()
        # Every user co-interacts with every other -> no dissimilar edges.
        assert graph.dissimilar_users.nnz == 0

    def test_no_cooccurrence_dataset(self):
        # Disjoint item sets: no similar users at all.
        ds = tiny_dataset([[1, 2, 1], [3, 4, 3], [5, 6, 5]], num_items=6)
        graph = build_multi_relation_graph(ds)
        assert graph.similar_users.nnz == 0
        assert graph.dissimilar_users.nnz == 0  # requires a common similar

    def test_ssdrec_on_sparse_graph(self):
        """SSDRec must construct and train even when most relations are
        empty (zero aggregates, residual embeddings carry the signal)."""
        ds = tiny_dataset([[1, 2, 1, 2, 1], [3, 4, 3, 4, 3]], num_items=4)
        split = leave_one_out_split(ds, max_len=5)
        model = SSDRec(ds, backbone_cls=GRU4Rec,
                       config=SSDRecConfig(dim=8, max_len=5),
                       rng=np.random.default_rng(0))
        result = Trainer(model, split,
                         TrainConfig(epochs=1, batch_size=2)).fit()
        assert np.isfinite(result.history[0]["loss"])


class TestExtremeInputs:
    def test_batch_size_one(self):
        ds = generate("beauty", seed=0, scale=0.25)
        split = leave_one_out_split(ds, max_len=8)
        model = SASRec(num_items=ds.num_items, dim=8, max_len=8,
                       rng=np.random.default_rng(0))
        loader = DataLoader(split.train[:3], batch_size=1, max_len=8)
        for batch in loader:
            assert np.isfinite(model.loss(batch).item())

    def test_minimum_length_sequences(self):
        items, mask, _ = pad_sequences([[7]], max_len=6)
        model = SASRec(num_items=10, dim=8, max_len=6,
                       rng=np.random.default_rng(0))
        logits = model.forward(items, mask)
        assert np.isfinite(logits.data[:, 1:]).all()

    def test_huge_learning_rate_stays_finite_with_clipping(self):
        ds = generate("beauty", seed=0, scale=0.25)
        split = leave_one_out_split(ds, max_len=8)
        model = GRU4Rec(num_items=ds.num_items, dim=8, max_len=8,
                        rng=np.random.default_rng(0))
        config = TrainConfig(epochs=2, batch_size=32, learning_rate=10.0,
                             grad_clip=1.0)
        result = Trainer(model, split, config).fit()
        for p in model.parameters():
            assert np.isfinite(p.data).all()
        assert np.isfinite(result.history[-1]["loss"])

    def test_denoiser_single_item_sequence_never_empty(self):
        model = HSD(num_items=10, dim=8, max_len=6,
                    rng=np.random.default_rng(0))
        items, mask, _ = pad_sequences([[3]], max_len=6)
        keep = model.keep_mask(items, mask)
        assert keep.sum() == 1

    def test_dsan_uniform_scores_keep_valid(self):
        model = DSAN(num_items=10, dim=8, max_len=6,
                     rng=np.random.default_rng(0))
        items, mask, _ = pad_sequences([[1, 1, 1, 1]], max_len=6)
        keep = model.keep_mask(items, mask)
        assert keep.any()


class TestNoiseEdgeCases:
    def test_inject_into_saturated_universe(self):
        """When a user interacted with every item, nothing can be inserted."""
        ds = tiny_dataset([[1, 2, 3]], num_items=3)
        noisy = inject_noise(ds, ratio=0.5, seed=0)
        assert noisy.noise_count() == 0

    def test_zero_ratio_is_identity(self):
        ds = generate("beauty", seed=0, scale=0.25)
        noisy = inject_noise(ds, ratio=0.0, seed=0)
        assert noisy.dataset.sequences == ds.sequences


class TestSSDRecEdgeCases:
    def test_augmentation_with_two_item_sequences(self):
        ds = generate("beauty", seed=0, scale=0.25)
        model = SSDRec(ds, config=SSDRecConfig(dim=8, max_len=6),
                       rng=np.random.default_rng(0))
        model.train()
        items, mask, lengths = pad_sequences([[1, 2], [3, 4]], max_len=6)
        batch = Batch(users=np.array([1, 2]), items=items, mask=mask,
                      lengths=lengths, targets=np.array([5, 6]))
        loss = model.loss(batch)
        assert np.isfinite(loss.item())

    def test_denoise_rounds_zero(self):
        ds = generate("beauty", seed=0, scale=0.25)
        model = SSDRec(ds, config=SSDRecConfig(dim=8, max_len=6,
                                               denoise_rounds=0),
                       rng=np.random.default_rng(0))
        items, mask, _ = pad_sequences([ds.sequences[1][:5]], max_len=6)
        keep = model.keep_mask(items, mask)
        assert keep.any()

    def test_forward_without_users(self):
        """User-free inference (cold users) must still work."""
        ds = generate("beauty", seed=0, scale=0.25)
        model = SSDRec(ds, config=SSDRecConfig(dim=8, max_len=6),
                       rng=np.random.default_rng(0))
        items, mask, _ = pad_sequences([[1, 2, 3]], max_len=6)
        logits = model.forward(items, mask, users=None)
        assert np.isfinite(logits.data[:, 1:ds.num_items + 1]).all()
