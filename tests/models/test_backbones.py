"""Tests shared across the six sequential recommender backbones."""

import numpy as np
import pytest

from repro.data import PAD_ID, generate, leave_one_out_split
from repro.data.batching import Batch, pad_sequences
from repro.models import BACKBONES, SASRec, BERT4Rec
from repro.nn import Tensor

RNG = np.random.default_rng(11)
NUM_ITEMS = 40
DIM = 16
MAX_LEN = 10


def make_model(cls):
    return cls(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
               rng=np.random.default_rng(0))


def make_batch(batch_size=4, length=MAX_LEN):
    seqs = [RNG.integers(1, NUM_ITEMS + 1,
                         size=RNG.integers(3, length + 1)).tolist()
            for _ in range(batch_size)]
    items, mask, lengths = pad_sequences(seqs, max_len=length)
    return Batch(users=np.arange(1, batch_size + 1), items=items, mask=mask,
                 lengths=lengths,
                 targets=RNG.integers(1, NUM_ITEMS + 1, size=batch_size))


@pytest.mark.parametrize("name", sorted(BACKBONES))
class TestAllBackbones:
    def test_forward_shape(self, name):
        model = make_model(BACKBONES[name])
        batch = make_batch()
        logits = model.forward(batch.items, batch.mask)
        assert logits.shape[0] == batch.batch_size
        assert logits.shape[1] >= NUM_ITEMS + 1

    def test_pad_item_never_recommended(self, name):
        model = make_model(BACKBONES[name])
        batch = make_batch()
        logits = model.forward(batch.items, batch.mask)
        assert (logits.data[:, PAD_ID] < -1e100).all()

    def test_loss_scalar_and_finite(self, name):
        model = make_model(BACKBONES[name])
        loss = model.loss(make_batch())
        assert loss.data.size == 1
        assert np.isfinite(loss.item())

    def test_gradients_reach_embeddings(self, name):
        model = make_model(BACKBONES[name])
        model.loss(make_batch()).backward()
        grad = model.item_embedding.weight.grad
        assert grad is not None
        assert np.abs(grad).sum() > 0

    def test_one_step_reduces_loss(self, name):
        from repro.nn import Adam
        model = make_model(BACKBONES[name])
        model.eval()  # disable dropout for determinism
        batch = make_batch()
        opt = Adam(model.parameters(), lr=0.01)
        first = model.loss(batch)
        first.backward()
        opt.step()
        second = model.loss(batch)
        assert second.item() < first.item()

    def test_encode_states_accepts_external_states(self, name):
        """The SSDRec plug-in contract: encode precomputed representations."""
        model = make_model(BACKBONES[name])
        model.eval()
        states = Tensor(RNG.normal(size=(3, MAX_LEN, DIM)))
        mask = np.ones((3, MAX_LEN), dtype=bool)
        rep = model.encode_states(states, mask)
        assert rep.shape == (3, DIM)

    def test_variable_lengths_in_batch(self, name):
        model = make_model(BACKBONES[name])
        items, mask, lengths = pad_sequences([[1, 2], [3, 4, 5, 6, 7]],
                                             max_len=MAX_LEN)
        logits = model.forward(items, mask)
        assert np.isfinite(logits.data[:, 1:NUM_ITEMS + 1]).all()


class TestBaseHelpers:
    def test_last_state_left_padding(self):
        states = Tensor(np.arange(24, dtype=float).reshape(2, 4, 3))
        mask = np.array([[False, False, True, True], [True] * 4])
        last = SASRec.last_state(states, mask)
        np.testing.assert_allclose(last.data[0], states.data[0, 3])
        np.testing.assert_allclose(last.data[1], states.data[1, 3])

    def test_last_state_internal_mask(self):
        states = Tensor(np.arange(12, dtype=float).reshape(1, 4, 3))
        mask = np.array([[True, True, False, False]])
        last = SASRec.last_state(states, mask)
        np.testing.assert_allclose(last.data[0], states.data[0, 1])

    def test_masked_mean(self):
        states = Tensor(np.ones((1, 3, 2)) * np.array([1.0, 2.0, 3.0])[None, :, None])
        mask = np.array([[True, True, False]])
        mean = SASRec.masked_mean(states, mask)
        np.testing.assert_allclose(mean.data, [[1.5, 1.5]])

    def test_invalid_num_items(self):
        with pytest.raises(ValueError):
            SASRec(num_items=0)


class TestSASRecCausality:
    def test_prediction_ignores_future_noise(self):
        """SASRec at position t must not see items after t (causal mask)."""
        model = make_model(SASRec)
        model.eval()
        items, mask, _ = pad_sequences([[1, 2, 3, 4]], max_len=6)
        h1 = model.encode(items, mask)
        # Changing the last item must change the representation...
        items2 = items.copy()
        items2[0, -1] = 9
        h2 = model.encode(items2, mask)
        assert not np.allclose(h1.data, h2.data)


class TestBERT4Rec:
    def test_mask_token_reserved(self):
        model = make_model(BERT4Rec)
        assert model.mask_token == NUM_ITEMS + 1
        assert model.item_embedding.num_embeddings == NUM_ITEMS + 2

    def test_mask_token_never_recommended(self):
        model = make_model(BERT4Rec)
        batch = make_batch()
        logits = model.forward(batch.items, batch.mask)
        assert (logits.data[:, model.mask_token] < -1e100).all()

    def test_cloze_loss_differs_from_plain(self):
        model = make_model(BERT4Rec)
        batch = make_batch()
        loss = model.loss(batch)
        assert np.isfinite(loss.item())


class TestTraining:
    def test_model_learns_repeating_pattern(self):
        """A deterministic next-item rule should be learnable quickly."""
        from repro.nn import Adam
        model = make_model(SASRec)
        # items cycle 1->2->3->1; predict the successor
        seqs = [[1, 2, 3, 1, 2], [2, 3, 1, 2, 3], [3, 1, 2, 3, 1]]
        targets = np.array([3, 1, 2])
        items, mask, lengths = pad_sequences(seqs, max_len=MAX_LEN)
        batch = Batch(users=np.array([1, 2, 3]), items=items, mask=mask,
                      lengths=lengths, targets=targets)
        opt = Adam(model.parameters(), lr=0.01)
        for _ in range(60):
            opt.zero_grad()
            model.loss(batch).backward()
            opt.step()
        model.eval()
        preds = model.forward(items, mask).data.argmax(axis=1)
        assert (preds == targets).mean() >= 2 / 3
