"""Model-specific behavioural tests beyond the shared backbone contract."""

import numpy as np
import pytest

from repro.data.batching import pad_sequences
from repro.models import NARM, STAMP, Caser, GRU4Rec, SASRec
from repro.nn import Tensor

RNG = np.random.default_rng(81)
NUM_ITEMS = 30
DIM = 16
MAX_LEN = 10


class TestNARM:
    def test_attention_ignores_padding(self):
        """Perturbing a padded position must not change the encoding."""
        model = NARM(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                     rng=np.random.default_rng(0))
        model.eval()
        states = RNG.normal(size=(1, 5, DIM))
        mask = np.array([[False, False, True, True, True]])
        h1 = model.encode_states(Tensor(states.copy()), mask)
        states2 = states.copy()
        states2[0, 0] += 100.0  # padded position
        h2 = model.encode_states(Tensor(states2), mask)
        # GRU does consume padded steps, but attention must not: with
        # zero-embedding padding the observable contract is on real ids.
        items, m, _ = pad_sequences([[1, 2, 3]], max_len=5)
        e1 = model.encode(items, m)
        assert np.isfinite(e1.data).all()
        # Direct check on the attention weights: masked softmax zeroes pads.
        from repro.nn import functional as F
        energy = Tensor(RNG.normal(size=(1, 5)))
        w = F.masked_softmax(energy, m)
        assert (w.data[~m] < 1e-12).all()

    def test_local_global_components_both_matter(self):
        model = NARM(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                     rng=np.random.default_rng(0))
        model.eval()
        items, mask, _ = pad_sequences([[1, 2, 3, 4]], max_len=6)
        base = model.encode(items, mask).data
        # Zeroing the attention-energy projection kills the local part.
        model.attn_energy.weight.data[:] = 0.0
        ablated = model.encode(items, mask).data
        assert not np.allclose(base, ablated)


class TestSTAMP:
    def test_last_item_priority(self):
        """Changing the last item must change STAMP's output strongly."""
        model = STAMP(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                      rng=np.random.default_rng(0))
        model.eval()
        items, mask, _ = pad_sequences([[1, 2, 3, 4]], max_len=6)
        base = model.encode(items, mask).data
        items2 = items.copy()
        items2[0, -1] = 9
        changed = model.encode(items2, mask).data
        assert np.abs(base - changed).max() > 1e-6

    def test_product_form(self):
        """STAMP's output is h_s ⊙ h_t: zero current interest zeroes it."""
        model = STAMP(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                      rng=np.random.default_rng(0))
        model.eval()
        model.mlp_t.weight.data[:] = 0.0
        model.mlp_t.bias.data[:] = 0.0  # tanh(0) = 0 -> product is 0
        items, mask, _ = pad_sequences([[1, 2, 3]], max_len=6)
        out = model.encode(items, mask)
        np.testing.assert_allclose(out.data, 0.0, atol=1e-12)


class TestCaser:
    def test_short_sequences_skip_tall_filters(self):
        """Sequences shorter than a filter height must still encode."""
        model = Caser(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                      filter_heights=(2, 3, 4), rng=np.random.default_rng(0))
        model.eval()
        states = Tensor(RNG.normal(size=(2, 3, DIM)))  # length 3 < height 4
        mask = np.ones((2, 3), dtype=bool)
        rep = model.encode_states(states, mask)
        assert rep.shape == (2, DIM)
        assert np.isfinite(rep.data).all()

    def test_padding_zeroed_before_convolution(self):
        model = Caser(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                      rng=np.random.default_rng(0))
        model.eval()
        states = RNG.normal(size=(1, 6, DIM))
        mask = np.array([[False, False, True, True, True, True]])
        h1 = model.encode_states(Tensor(states.copy()), mask).data
        states2 = states.copy()
        states2[0, 0] += 50.0  # padded position
        h2 = model.encode_states(Tensor(states2), mask).data
        np.testing.assert_allclose(h1, h2, atol=1e-10)

    def test_fit_length_pads_and_truncates(self):
        image = Tensor(RNG.normal(size=(1, DIM, 5)))
        padded = Caser._fit_length(image, 8)
        assert padded.shape == (1, DIM, 8)
        np.testing.assert_allclose(padded.data[:, :, :3], 0.0)
        truncated = Caser._fit_length(image, 3)
        np.testing.assert_allclose(truncated.data, image.data[:, :, 2:])


class TestGRU4Rec:
    def test_multi_layer_stacks(self):
        one = GRU4Rec(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                      num_layers=1, rng=np.random.default_rng(0))
        two = GRU4Rec(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                      num_layers=2, rng=np.random.default_rng(0))
        assert len(two.layers) == 2
        assert two.num_parameters() > one.num_parameters()


class TestSASRec:
    def test_position_embedding_matters(self):
        """Reordering items must change the encoding (position-aware)."""
        model = SASRec(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                       rng=np.random.default_rng(0))
        model.eval()
        a, _, _ = pad_sequences([[1, 2, 3, 4]], max_len=6)
        b, _, _ = pad_sequences([[4, 3, 2, 1]], max_len=6)
        mask = a != 0
        ha = model.encode(a, mask).data
        hb = model.encode(b, mask).data
        assert not np.allclose(ha, hb)

    def test_headroom_for_ssdrec_insertions(self):
        """SASRec must accept sequences up to max_len + 2 (stage 2 grows
        sequences by two during training)."""
        model = SASRec(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                       rng=np.random.default_rng(0))
        model.eval()
        states = Tensor(RNG.normal(size=(1, MAX_LEN + 2, DIM)))
        mask = np.ones((1, MAX_LEN + 2), dtype=bool)
        rep = model.encode_states(states, mask)
        assert rep.shape == (1, DIM)


class TestCaserFeatureAlignment:
    def test_skipped_filter_slots_stay_zero(self):
        """When a filter is skipped (short sequence), its feature slots
        contribute zeros — the vertical features must not shift into them."""
        model = Caser(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                      filter_heights=(2, 3, 4), num_h_filters=4,
                      rng=np.random.default_rng(0))
        model.eval()
        states = Tensor(RNG.normal(size=(1, 3, DIM)))  # skips height-4 conv
        mask = np.ones((1, 3), dtype=bool)
        # Zero out FC weights for the height-4 filter's slots; the output
        # must be unchanged because those inputs are zero.
        out_before = model.encode_states(states, mask).data.copy()
        start = 2 * 4  # after h2 and h3 blocks (4 filters each)
        model.fc.weight.data[start:start + 4, :] = 123.0
        out_after = model.encode_states(states, mask).data
        np.testing.assert_allclose(out_before, out_after, atol=1e-10)
