"""Tests for the SR-GNN extension backbone."""

import numpy as np
import pytest

from repro.data.batching import Batch, pad_sequences
from repro.models import SRGNN
from repro.nn import Adam, Tensor

RNG = np.random.default_rng(61)
NUM_ITEMS = 30
DIM = 16
MAX_LEN = 8


def make_model(num_steps=1):
    return SRGNN(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                 num_steps=num_steps, rng=np.random.default_rng(0))


class TestAdjacency:
    def test_consecutive_edges_only(self):
        mask = np.array([[False, True, True, True]])
        in_adj, out_adj = SRGNN._adjacency(mask)
        # Outgoing: 1->2, 2->3 (positions), nothing from padding.
        assert out_adj[0, 1, 2] == 1.0 and out_adj[0, 2, 3] == 1.0
        assert out_adj[0, 0].sum() == 0
        # Incoming mirrors outgoing.
        np.testing.assert_allclose(in_adj[0], out_adj[0].T)

    def test_row_normalized(self):
        mask = np.ones((1, 5), dtype=bool)
        in_adj, out_adj = SRGNN._adjacency(mask)
        sums = out_adj.sum(axis=-1)
        assert ((sums == 0) | np.isclose(sums, 1.0)).all()

    def test_single_item_no_edges(self):
        mask = np.array([[False, False, True]])
        in_adj, out_adj = SRGNN._adjacency(mask)
        assert out_adj.sum() == 0 and in_adj.sum() == 0


class TestSRGNN:
    def _batch(self):
        seqs = [RNG.integers(1, NUM_ITEMS + 1, size=5).tolist(),
                RNG.integers(1, NUM_ITEMS + 1, size=3).tolist()]
        items, mask, lengths = pad_sequences(seqs, max_len=MAX_LEN)
        return Batch(users=np.array([1, 2]), items=items, mask=mask,
                     lengths=lengths, targets=np.array([1, 2]))

    def test_forward_and_loss(self):
        model = make_model()
        batch = self._batch()
        logits = model.forward(batch.items, batch.mask)
        assert logits.shape == (2, NUM_ITEMS + 1)
        loss = model.loss(batch)
        assert np.isfinite(loss.item())

    def test_multiple_propagation_steps(self):
        one = make_model(num_steps=1)
        two = make_model(num_steps=2)
        two.load_state_dict(one.state_dict())
        one.eval(), two.eval()
        batch = self._batch()
        a = one.forward(batch.items, batch.mask).data
        b = two.forward(batch.items, batch.mask).data
        assert not np.allclose(a, b)

    def test_one_step_reduces_loss(self):
        model = make_model()
        model.eval()
        batch = self._batch()
        opt = Adam(model.parameters(), lr=0.01)
        first = model.loss(batch)
        first.backward()
        opt.step()
        assert model.loss(batch).item() < first.item()

    def test_encode_states_plugin_contract(self):
        model = make_model()
        model.eval()
        states = Tensor(RNG.normal(size=(2, 6, DIM)))
        mask = np.ones((2, 6), dtype=bool)
        rep = model.encode_states(states, mask)
        assert rep.shape == (2, DIM)

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            make_model(num_steps=0)

    def test_works_under_ssdrec(self):
        from repro.core import SSDRec, SSDRecConfig
        from repro.data import generate, leave_one_out_split
        from repro.data.batching import DataLoader
        ds = generate("beauty", seed=0, scale=0.25)
        split = leave_one_out_split(ds, max_len=MAX_LEN)
        model = SSDRec(ds, backbone_cls=SRGNN,
                       config=SSDRecConfig(dim=DIM, max_len=MAX_LEN),
                       rng=np.random.default_rng(0))
        batch = next(iter(DataLoader(split.train, batch_size=8,
                                     max_len=MAX_LEN)))
        loss = model.loss(batch)
        assert np.isfinite(loss.item())
        loss.backward()
