"""Property-based tests of the autograd engine (hypothesis).

Random compositions of differentiable ops are checked against central
finite differences — the strongest general correctness statement we can
make about reverse-mode AD.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor
from repro.nn import functional as F

EPS = 1e-6

# Each op: (name, callable, needs_positive_input)
SAFE_UNARY = [
    ("tanh", lambda t: t.tanh(), False),
    ("sigmoid", lambda t: t.sigmoid(), False),
    ("exp", lambda t: (t * 0.3).exp(), False),
    ("square", lambda t: t * t, False),
    ("scale", lambda t: t * 1.7 - 0.3, False),
    ("softmax", lambda t: F.softmax(t, axis=-1), False),
    ("logsumexp", lambda t: t.exp().sum(axis=-1, keepdims=True).log(), False),
    ("mean", lambda t: t.mean(axis=0, keepdims=True) + t, False),
]


def numeric_grad(fn, x):
    grad = np.zeros_like(x)
    flat, gflat = x.reshape(-1), grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + EPS
        hi = fn(x)
        flat[i] = orig - EPS
        lo = fn(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * EPS)
    return grad


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.sampled_from(range(len(SAFE_UNARY))), min_size=1, max_size=4),
    st.integers(0, 10_000),
)
def test_random_composition_matches_finite_differences(op_indices, seed):
    """d/dx of any chain of smooth ops must match finite differences."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1.5, 1.5, size=(3, 4))
    weights = rng.normal(size=(3, 4))

    def apply_chain(arr):
        t = Tensor(arr) if not isinstance(arr, Tensor) else arr
        for idx in op_indices:
            t = SAFE_UNARY[idx][1](t)
        return t

    t = Tensor(x.copy(), requires_grad=True)
    (apply_chain(t) * Tensor(weights)).sum().backward()
    num = numeric_grad(
        lambda arr: float((apply_chain(arr).data * weights).sum()), x.copy())
    np.testing.assert_allclose(t.grad, num, rtol=1e-3, atol=1e-5)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_chain_rule_through_matmul_and_reduction(seed):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(3, 4))
    b = rng.normal(size=(4, 2))

    def fn(arr):
        return float((Tensor(arr) @ Tensor(b)).tanh().sum().data)

    t = Tensor(a.copy(), requires_grad=True)
    (t @ Tensor(b)).tanh().sum().backward()
    num = numeric_grad(lambda arr: fn(arr), a.copy())
    np.testing.assert_allclose(t.grad, num, rtol=1e-4, atol=1e-6)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_gradient_linearity(seed):
    """grad of (f + g) == grad f + grad g, evaluated separately."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(5,))

    t1 = Tensor(x.copy(), requires_grad=True)
    (t1.tanh().sum()).backward()
    g_f = t1.grad.copy()

    t2 = Tensor(x.copy(), requires_grad=True)
    ((t2 * t2).sum()).backward()
    g_g = t2.grad.copy()

    t3 = Tensor(x.copy(), requires_grad=True)
    (t3.tanh().sum() + (t3 * t3).sum()).backward()
    np.testing.assert_allclose(t3.grad, g_f + g_g, rtol=1e-10)


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 6), st.integers(2, 6), st.integers(0, 1000))
def test_softmax_jacobian_rows_sum_to_zero(rows, cols, seed):
    """Σ_j d softmax_j / dx_i = 0: probability mass is conserved."""
    rng = np.random.default_rng(seed)
    t = Tensor(rng.normal(size=(rows, cols)), requires_grad=True)
    F.softmax(t, axis=-1).sum().backward()
    np.testing.assert_allclose(t.grad, np.zeros((rows, cols)), atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 5), st.integers(2, 8), st.integers(0, 1000))
def test_cross_entropy_gradient_rows_sum_to_zero(batch, classes, seed):
    """Softmax CE gradient per row sums to zero (probs - onehot)."""
    rng = np.random.default_rng(seed)
    logits = Tensor(rng.normal(size=(batch, classes)), requires_grad=True)
    targets = rng.integers(0, classes, size=batch)
    F.cross_entropy(logits, targets).backward()
    np.testing.assert_allclose(logits.grad.sum(axis=1),
                               np.zeros(batch), atol=1e-12)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 1000))
def test_detach_blocks_gradient(seed):
    rng = np.random.default_rng(seed)
    t = Tensor(rng.normal(size=(4,)), requires_grad=True)
    blocked = t.detach() * t  # only one path carries gradient
    blocked.sum().backward()
    np.testing.assert_allclose(t.grad, t.data, rtol=1e-12)
