"""Tests for repro.nn.functional: stability, values, and gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor
from repro.nn import functional as F

RNG = np.random.default_rng(1)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(RNG.normal(size=(5, 7)))
        out = F.softmax(x)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(5), rtol=1e-12)

    def test_stability_large_values(self):
        x = Tensor(np.array([[1e6, 1e6 + 1.0]]))
        out = F.softmax(x)
        assert np.isfinite(out.data).all()
        np.testing.assert_allclose(out.data.sum(), 1.0)

    def test_log_softmax_consistent(self):
        x = Tensor(RNG.normal(size=(3, 4)))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), rtol=1e-10)

    def test_gradient_sums_to_zero(self):
        # d softmax / dx summed over outputs is 0 for each input.
        x = Tensor(RNG.normal(size=(2, 5)), requires_grad=True)
        F.softmax(x).sum().backward()
        np.testing.assert_allclose(x.grad, np.zeros((2, 5)), atol=1e-10)

    def test_masked_softmax_zeroes_invalid(self):
        x = Tensor(RNG.normal(size=(2, 4)))
        mask = np.array([[True, True, False, False], [True, False, True, False]])
        out = F.masked_softmax(x, mask)
        assert (out.data[~mask] < 1e-12).all()
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(2))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 8), st.integers(2, 8))
    def test_softmax_invariant_to_shift(self, rows, cols):
        x = RNG.normal(size=(rows, cols))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, rtol=1e-8)


class TestLosses:
    def test_cross_entropy_value(self):
        logits = Tensor(np.log(np.array([[0.7, 0.2, 0.1], [0.1, 0.8, 0.1]])))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        expected = -(np.log(0.7) + np.log(0.8)) / 2
        np.testing.assert_allclose(loss.item(), expected, rtol=1e-8)

    def test_cross_entropy_gradient(self):
        logits = Tensor(RNG.normal(size=(4, 6)), requires_grad=True)
        targets = np.array([0, 2, 5, 1])
        F.cross_entropy(logits, targets).backward()
        probs = F.softmax(Tensor(logits.data)).data
        onehot = np.eye(6)[targets]
        np.testing.assert_allclose(logits.grad, (probs - onehot) / 4, atol=1e-8)

    def test_cross_entropy_ignore_index(self):
        logits = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        targets = np.array([1, 0, 2])
        full = F.cross_entropy(logits, targets)
        logits2 = Tensor(logits.data.copy(), requires_grad=True)
        masked = F.cross_entropy(logits2, np.array([1, 0, 0]), ignore_index=0)
        # Row 1's true target was 0 -> with ignore_index=0, rows 1,2 drop out
        # differently; just check the ignored rows get zero gradient.
        masked.backward()
        np.testing.assert_allclose(logits2.grad[1], np.zeros(4), atol=1e-12)
        assert not np.allclose(logits2.grad[0], 0)
        assert full.item() > 0

    def test_bce_with_logits_matches_reference(self):
        logits = RNG.normal(size=(10,))
        targets = RNG.integers(0, 2, size=10).astype(float)
        loss = F.binary_cross_entropy_with_logits(Tensor(logits), targets)
        p = 1 / (1 + np.exp(-logits))
        ref = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        np.testing.assert_allclose(loss.item(), ref, rtol=1e-8)

    def test_bce_stability_extreme_logits(self):
        logits = Tensor(np.array([1e4, -1e4]), requires_grad=True)
        loss = F.binary_cross_entropy_with_logits(logits, np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())
        loss.backward()
        assert np.isfinite(logits.grad).all()

    def test_bpr_loss_orders_correctly(self):
        good = F.bpr_loss(Tensor(np.array([5.0])), Tensor(np.array([-5.0])))
        bad = F.bpr_loss(Tensor(np.array([-5.0])), Tensor(np.array([5.0])))
        assert good.item() < bad.item()

    def test_mse(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = F.mse_loss(pred, np.array([0.0, 0.0]))
        np.testing.assert_allclose(loss.item(), 2.5)


class TestDropout:
    def test_eval_mode_identity(self):
        x = Tensor(RNG.normal(size=(10, 10)))
        out = F.dropout(x, 0.5, training=False)
        np.testing.assert_array_equal(out.data, x.data)

    def test_training_scales_survivors(self):
        rng = np.random.default_rng(7)
        x = Tensor(np.ones((2000,)))
        out = F.dropout(x, 0.5, training=True, rng=rng)
        kept = out.data[out.data > 0]
        np.testing.assert_allclose(kept, 2.0)
        assert abs(out.data.mean() - 1.0) < 0.1

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, training=True)


class TestActivations:
    def test_gelu_known_values(self):
        out = F.gelu(Tensor(np.array([0.0])))
        np.testing.assert_allclose(out.data, [0.0], atol=1e-12)
        out = F.gelu(Tensor(np.array([100.0])))
        np.testing.assert_allclose(out.data, [100.0], rtol=1e-6)

    def test_l2_regularization(self):
        params = [Tensor(np.array([3.0, 4.0]), requires_grad=True)]
        reg = F.l2_regularization(params, 0.1)
        np.testing.assert_allclose(reg.item(), 2.5)
