"""Parity tests for the fused substrate kernels.

Every fused op (single-node softmax/log-softmax/cross-entropy/linear,
scaled-dot-product attention, LSTM/GRU steps, LayerNorm) must match its
unfused Tensor-op composition (``repro.nn.reference``) in value and in
gradient, and must match central finite differences directly.  Also covers
the gradient-buffer-reuse regression: in-place accumulation must produce
the same gradients as the seed's fresh-allocation backward.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (GRU, LSTM, GRUCell, LSTMCell, LayerNorm, Tensor,
                      reference, scaled_dot_product_attention)
from repro.nn import functional as F

EPS = 1e-6


def numeric_grad(fn, x):
    """Central finite-difference gradient of scalar ``fn`` at ``x``."""
    grad = np.zeros_like(x)
    flat, gflat = x.reshape(-1), grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + EPS
        hi = fn(x)
        flat[i] = orig - EPS
        lo = fn(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * EPS)
    return grad


def backward_grads(make_loss, *tensors):
    for t in tensors:
        t.grad = None
    make_loss().backward()
    return [t.grad.copy() for t in tensors]


class TestFusedVsUnfused:
    """Fused kernels match the unfused composition to 1e-10."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 6), st.integers(2, 9), st.integers(0, 10_000))
    def test_softmax(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(rows, cols))
        w = rng.normal(size=(rows, cols))
        t = Tensor(x, requires_grad=True)
        fused, = backward_grads(lambda: (F.softmax(t) * Tensor(w)).sum(), t)
        unfused, = backward_grads(
            lambda: (reference.softmax_unfused(t) * Tensor(w)).sum(), t)
        np.testing.assert_allclose(F.softmax(t).data,
                                   reference.softmax_unfused(t).data,
                                   atol=1e-12)
        np.testing.assert_allclose(fused, unfused, atol=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 6), st.integers(2, 9), st.integers(0, 10_000))
    def test_log_softmax(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        t = Tensor(rng.normal(size=(rows, cols)), requires_grad=True)
        w = rng.normal(size=(rows, cols))
        fused, = backward_grads(lambda: (F.log_softmax(t) * Tensor(w)).sum(), t)
        unfused, = backward_grads(
            lambda: (reference.log_softmax_unfused(t) * Tensor(w)).sum(), t)
        np.testing.assert_allclose(fused, unfused, atol=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 6), st.integers(2, 9), st.integers(0, 10_000))
    def test_masked_softmax(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        t = Tensor(rng.normal(size=(rows, cols)), requires_grad=True)
        w = rng.normal(size=(rows, cols))
        mask = rng.random((rows, cols)) > 0.4
        mask[0] = False  # exercise the fully-masked-row path
        fused, = backward_grads(
            lambda: (F.masked_softmax(t, mask) * Tensor(w)).sum(), t)
        unfused, = backward_grads(
            lambda: (reference.masked_softmax_unfused(t, mask)
                     * Tensor(w)).sum(), t)
        np.testing.assert_allclose(fused, unfused, atol=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 6), st.integers(2, 9), st.integers(0, 10_000),
           st.booleans())
    def test_cross_entropy(self, rows, cols, seed, use_ignore):
        rng = np.random.default_rng(seed)
        t = Tensor(rng.normal(size=(rows, cols)), requires_grad=True)
        targets = rng.integers(0, cols, size=rows)
        ignore = 0 if use_ignore else None
        fused_val = F.cross_entropy(t, targets, ignore_index=ignore)
        unfused_val = reference.cross_entropy_unfused(t, targets,
                                                      ignore_index=ignore)
        np.testing.assert_allclose(fused_val.item(), unfused_val.item(),
                                   rtol=1e-10)
        fused, = backward_grads(
            lambda: F.cross_entropy(t, targets, ignore_index=ignore), t)
        unfused, = backward_grads(
            lambda: reference.cross_entropy_unfused(t, targets,
                                                    ignore_index=ignore), t)
        np.testing.assert_allclose(fused, unfused, atol=1e-10)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 4), st.integers(2, 5), st.integers(2, 6),
           st.integers(0, 10_000))
    def test_linear(self, batch, din, dout, seed):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(size=(batch, 3, din)), requires_grad=True)
        w = Tensor(rng.normal(size=(din, dout)), requires_grad=True)
        b = Tensor(rng.normal(size=(dout,)), requires_grad=True)
        fused = backward_grads(
            lambda: F.linear(x, w, b).tanh().sum(), x, w, b)
        unfused = backward_grads(
            lambda: reference.linear_unfused(x, w, b).tanh().sum(), x, w, b)
        for got, want in zip(fused, unfused):
            np.testing.assert_allclose(got, want, atol=1e-10)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, 3), st.integers(2, 5), st.integers(2, 5),
           st.integers(0, 10_000), st.booleans())
    def test_attention(self, batch, length, dim, seed, causal):
        rng = np.random.default_rng(seed)
        q = Tensor(rng.normal(size=(batch, length, dim)), requires_grad=True)
        k = Tensor(rng.normal(size=(batch, length, dim)), requires_grad=True)
        v = Tensor(rng.normal(size=(batch, length, dim)), requires_grad=True)
        mask = np.tril(np.ones((length, length), dtype=bool)) if causal else None
        dmask = (rng.random((batch, length, length)) >= 0.25) / 0.75
        fused = backward_grads(
            lambda: scaled_dot_product_attention(
                q, k, v, attn_mask=mask, dropout_mask=dmask).tanh().sum(),
            q, k, v)
        unfused = backward_grads(
            lambda: reference.attention_unfused(
                q, k, v, attn_mask=mask, dropout_mask=dmask).tanh().sum(),
            q, k, v)
        for got, want, name in zip(fused, unfused, "qkv"):
            np.testing.assert_allclose(got, want, atol=1e-10,
                                       err_msg=f"grad mismatch for {name}")

    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, 4), st.integers(0, 10_000))
    def test_lstm_step(self, batch, seed):
        rng = np.random.default_rng(seed)
        cell = LSTMCell(4, 6, rng=np.random.default_rng(seed))
        x = Tensor(rng.normal(size=(batch, 4)), requires_grad=True)
        h = Tensor(rng.normal(size=(batch, 6)), requires_grad=True)
        c = Tensor(rng.normal(size=(batch, 6)), requires_grad=True)
        leaves = (x, h, c, cell.w_ih, cell.w_hh, cell.bias)

        def fused_loss():
            h2, c2 = cell(x, (h, c))
            return h2.tanh().sum() + (c2 * c2).sum()

        def unfused_loss():
            h2, c2 = reference.lstm_step_unfused(
                x, h, c, cell.w_ih, cell.w_hh, cell.bias, 6)
            return h2.tanh().sum() + (c2 * c2).sum()

        for got, want in zip(backward_grads(fused_loss, *leaves),
                             backward_grads(unfused_loss, *leaves)):
            np.testing.assert_allclose(got, want, atol=1e-10)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, 4), st.integers(0, 10_000))
    def test_gru_step(self, batch, seed):
        rng = np.random.default_rng(seed)
        cell = GRUCell(4, 6, rng=np.random.default_rng(seed))
        x = Tensor(rng.normal(size=(batch, 4)), requires_grad=True)
        h = Tensor(rng.normal(size=(batch, 6)), requires_grad=True)
        leaves = (x, h, cell.w_ih, cell.w_hh, cell.b_ih, cell.b_hh)
        fused = backward_grads(lambda: cell(x, h).tanh().sum(), *leaves)
        unfused = backward_grads(
            lambda: reference.gru_step_unfused(
                x, h, cell.w_ih, cell.w_hh, cell.b_ih, cell.b_hh,
                6).tanh().sum(), *leaves)
        for got, want in zip(fused, unfused):
            np.testing.assert_allclose(got, want, atol=1e-10)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(1, 3), st.integers(1, 5), st.integers(0, 10_000),
           st.booleans())
    def test_lstm_sequence(self, batch, length, seed, with_state):
        rng = np.random.default_rng(seed)
        lstm = LSTM(4, 5, rng=np.random.default_rng(seed))
        cell = lstm.cell
        x = Tensor(rng.normal(size=(batch, length, 4)), requires_grad=True)
        h0 = Tensor(rng.normal(size=(batch, 5)), requires_grad=True)
        c0 = Tensor(rng.normal(size=(batch, 5)), requires_grad=True)
        leaves = ((x, h0, c0, cell.w_ih, cell.w_hh, cell.bias)
                  if with_state else (x, cell.w_ih, cell.w_hh, cell.bias))

        def fused_loss():
            outs, (h, c) = lstm(x, (h0, c0) if with_state else None)
            return outs.tanh().sum() + (c * c).sum()

        def unfused_loss():
            h = h0 if with_state else Tensor(np.zeros((batch, 5)))
            c = c0 if with_state else Tensor(np.zeros((batch, 5)))
            outs = []
            for t in range(length):
                h, c = reference.lstm_step_unfused(
                    x[:, t, :], h, c, cell.w_ih, cell.w_hh, cell.bias, 5)
                outs.append(h)
            return (Tensor.stack(outs, axis=1).tanh().sum() + (c * c).sum())

        for got, want in zip(backward_grads(fused_loss, *leaves),
                             backward_grads(unfused_loss, *leaves)):
            np.testing.assert_allclose(got, want, atol=1e-9)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(1, 3), st.integers(1, 5), st.integers(0, 10_000),
           st.booleans())
    def test_gru_sequence(self, batch, length, seed, with_state):
        rng = np.random.default_rng(seed)
        gru = GRU(4, 5, rng=np.random.default_rng(seed))
        cell = gru.cell
        x = Tensor(rng.normal(size=(batch, length, 4)), requires_grad=True)
        h0 = Tensor(rng.normal(size=(batch, 5)), requires_grad=True)
        leaves = ((x, h0, cell.w_ih, cell.w_hh, cell.b_ih, cell.b_hh)
                  if with_state else
                  (x, cell.w_ih, cell.w_hh, cell.b_ih, cell.b_hh))

        def fused_loss():
            outs, h = gru(x, h0 if with_state else None)
            return outs.tanh().sum() + h.sum()

        def unfused_loss():
            h = h0 if with_state else Tensor(np.zeros((batch, 5)))
            outs = []
            for t in range(length):
                h = reference.gru_step_unfused(
                    x[:, t, :], h, cell.w_ih, cell.w_hh, cell.b_ih,
                    cell.b_hh, 5)
                outs.append(h)
            return Tensor.stack(outs, axis=1).tanh().sum() + h.sum()

        for got, want in zip(backward_grads(fused_loss, *leaves),
                             backward_grads(unfused_loss, *leaves)):
            np.testing.assert_allclose(got, want, atol=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, 4), st.integers(2, 6), st.integers(0, 10_000))
    def test_layer_norm(self, batch, dim, seed):
        rng = np.random.default_rng(seed)
        norm = LayerNorm(dim)
        norm.gamma.data[:] = rng.normal(size=dim)
        norm.beta.data[:] = rng.normal(size=dim)
        x = Tensor(rng.normal(size=(batch, 3, dim)), requires_grad=True)
        leaves = (x, norm.gamma, norm.beta)
        fused = backward_grads(lambda: norm(x).tanh().sum(), *leaves)
        unfused = backward_grads(
            lambda: reference.layer_norm_unfused(
                x, norm.gamma, norm.beta, norm.eps).tanh().sum(), *leaves)
        for got, want in zip(fused, unfused):
            np.testing.assert_allclose(got, want, atol=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 6), st.integers(2, 9), st.integers(0, 10_000))
    def test_sparsemax(self, rows, cols, seed):
        from repro.nn import sparsemax

        rng = np.random.default_rng(seed)
        x = rng.normal(size=(rows, cols)) * 2.0
        w = rng.normal(size=(rows, cols))
        t = Tensor(x, requires_grad=True)
        fused, = backward_grads(lambda: (sparsemax(t) * Tensor(w)).sum(), t)
        unfused, = backward_grads(
            lambda: (reference.sparsemax_unfused(t) * Tensor(w)).sum(), t)
        np.testing.assert_allclose(sparsemax(t).data,
                                   reference.sparsemax_unfused(t).data,
                                   atol=1e-12)
        np.testing.assert_allclose(fused, unfused, atol=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 6), st.integers(3, 12), st.integers(0, 10_000))
    def test_narrow(self, rows, cols, seed):
        from repro.nn.rnn import narrow

        rng = np.random.default_rng(seed)
        start = int(rng.integers(0, cols - 1))
        stop = int(rng.integers(start + 1, cols + 1))
        x = rng.normal(size=(rows, cols))
        w = rng.normal(size=(rows, stop - start))
        t = Tensor(x, requires_grad=True)
        fused, = backward_grads(lambda: (narrow(t, start, stop)
                                         * Tensor(w)).sum(), t)
        unfused, = backward_grads(
            lambda: (reference.narrow_unfused(t, start, stop)
                     * Tensor(w)).sum(), t)
        np.testing.assert_allclose(narrow(t, start, stop).data,
                                   reference.narrow_unfused(
                                       t, start, stop).data, atol=0)
        np.testing.assert_allclose(fused, unfused, atol=1e-12)


class TestFiniteDifferenceParity:
    """Fused gradients match central finite differences to 1e-6."""

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 5), st.integers(2, 7), st.integers(0, 10_000))
    def test_softmax_fd(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(-1.5, 1.5, size=(rows, cols))
        w = rng.normal(size=(rows, cols))
        t = Tensor(x.copy(), requires_grad=True)
        (F.softmax(t) * Tensor(w)).sum().backward()
        num = numeric_grad(
            lambda arr: float((F.softmax(Tensor(arr)).data * w).sum()),
            x.copy())
        np.testing.assert_allclose(t.grad, num, rtol=1e-4, atol=1e-6)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 5), st.integers(2, 7), st.integers(0, 10_000))
    def test_cross_entropy_fd(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(-1.5, 1.5, size=(rows, cols))
        targets = rng.integers(0, cols, size=rows)
        t = Tensor(x.copy(), requires_grad=True)
        F.cross_entropy(t, targets).backward()
        num = numeric_grad(
            lambda arr: F.cross_entropy(Tensor(arr), targets).item(),
            x.copy())
        np.testing.assert_allclose(t.grad, num, rtol=1e-4, atol=1e-6)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_attention_fd(self, seed):
        rng = np.random.default_rng(seed)
        q0 = rng.uniform(-1, 1, size=(2, 3, 4))
        k0 = rng.uniform(-1, 1, size=(2, 3, 4))
        v0 = rng.uniform(-1, 1, size=(2, 3, 4))
        mask = np.tril(np.ones((3, 3), dtype=bool))
        w = rng.normal(size=(2, 3, 4))

        def loss_at(q_arr):
            out = scaled_dot_product_attention(
                Tensor(q_arr), Tensor(k0), Tensor(v0), attn_mask=mask)
            return float((out.data * w).sum())

        q = Tensor(q0.copy(), requires_grad=True)
        out = scaled_dot_product_attention(q, Tensor(k0), Tensor(v0),
                                           attn_mask=mask)
        (out * Tensor(w)).sum().backward()
        np.testing.assert_allclose(q.grad, numeric_grad(loss_at, q0.copy()),
                                   rtol=1e-4, atol=1e-6)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_lstm_step_fd(self, seed):
        rng = np.random.default_rng(seed)
        cell = LSTMCell(3, 4, rng=np.random.default_rng(seed))
        x0 = rng.uniform(-1, 1, size=(2, 3))
        h0 = rng.uniform(-1, 1, size=(2, 4))
        c0 = rng.uniform(-1, 1, size=(2, 4))

        def loss_at(x_arr):
            h2, c2 = cell(Tensor(x_arr), (Tensor(h0), Tensor(c0)))
            return float(h2.data.sum() + c2.data.sum())

        x = Tensor(x0.copy(), requires_grad=True)
        h2, c2 = cell(x, (Tensor(h0), Tensor(c0)))
        (h2.sum() + c2.sum()).backward()
        np.testing.assert_allclose(x.grad, numeric_grad(loss_at, x0.copy()),
                                   rtol=1e-4, atol=1e-6)


class TestGradBufferReuse:
    """In-place gradient accumulation matches fresh-allocation semantics."""

    def test_repeated_backward_same_grads(self):
        rng = np.random.default_rng(3)
        w = Tensor(rng.normal(size=(6, 6)), requires_grad=True)
        x = rng.normal(size=(4, 6))

        def run():
            w.grad = None
            ((Tensor(x) @ w).tanh().sum()).backward()
            return w.grad.copy()

        first = run()
        # The second run reuses the persistent buffer: values must match
        # exactly, and the buffer object is recycled.
        buf_before = w._grad_buf
        second = run()
        np.testing.assert_array_equal(first, second)
        assert w._grad_buf is buf_before
        assert w.grad is w._grad_buf

    def test_accumulation_across_backwards(self):
        # Without zero_grad, grads accumulate — same as the seed behavior.
        w = Tensor(np.ones((3, 3)), requires_grad=True)
        (w.sum()).backward()
        once = w.grad.copy()
        (w.sum() * 2.0).backward()
        np.testing.assert_allclose(w.grad, once * 3.0)

    def test_diamond_fanin_matches_composition(self):
        # A node consumed by several children must accumulate all branch
        # contributions despite in-place ownership tracking.
        rng = np.random.default_rng(5)
        x = Tensor(rng.normal(size=(4, 4)), requires_grad=True)
        shared = x.tanh()
        (shared * shared + shared * 3.0).sum().backward()
        got = x.grad.copy()
        x2 = Tensor(x.data.copy(), requires_grad=True)
        s2 = x2.tanh()
        expected_fn = lambda s: s * s + s * 3.0  # noqa: E731
        expected_grad = (2.0 * s2.data + 3.0) * (1.0 - s2.data ** 2)
        np.testing.assert_allclose(got, expected_grad, atol=1e-12)

    def test_same_array_to_two_parents_not_corrupted(self):
        # __add__ hands the *same* grad array to both parents when shapes
        # match; in-place accumulation must never mutate that shared array.
        a = Tensor(np.ones((3,)), requires_grad=True)
        b = Tensor(np.ones((3,)), requires_grad=True)
        total = (a + b).sum() + a.sum() * 4.0
        total.backward()
        np.testing.assert_allclose(a.grad, np.full(3, 5.0))
        np.testing.assert_allclose(b.grad, np.full(3, 1.0))
