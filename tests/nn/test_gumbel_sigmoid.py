"""Tests for the binary-concrete (Gumbel-sigmoid) gate."""

import numpy as np
import pytest

from repro.nn import Tensor, gumbel_sigmoid


class TestGumbelSigmoid:
    def test_hard_is_binary(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(4, 7)))
        out = gumbel_sigmoid(logits, tau=0.5, hard=True,
                             rng=np.random.default_rng(1))
        assert ((out.data == 0) | (out.data == 1)).all()

    def test_soft_in_unit_interval(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(4, 7)))
        out = gumbel_sigmoid(logits, tau=1.0, hard=False,
                             rng=np.random.default_rng(1))
        assert ((out.data > 0) & (out.data < 1)).all()

    def test_deterministic_thresholds_at_zero(self):
        logits = Tensor(np.array([-3.0, -0.1, 0.1, 3.0]))
        out = gumbel_sigmoid(logits, tau=1.0, hard=True, deterministic=True)
        np.testing.assert_allclose(out.data, [0.0, 0.0, 1.0, 1.0])

    def test_extreme_logits_saturate(self):
        rng = np.random.default_rng(2)
        logits = Tensor(np.array([50.0, -50.0]))
        for _ in range(20):
            out = gumbel_sigmoid(logits, tau=1.0, hard=True, rng=rng)
            np.testing.assert_allclose(out.data, [1.0, 0.0])

    def test_sampling_rate_matches_sigmoid(self):
        """Empirical keep rate approximates sigmoid(logit) at tau=1."""
        rng = np.random.default_rng(3)
        logit = 1.0
        logits = Tensor(np.full(20_000, logit))
        out = gumbel_sigmoid(logits, tau=1.0, hard=True, rng=rng)
        expected = 1.0 / (1.0 + np.exp(-logit))
        assert abs(out.data.mean() - expected) < 0.02

    def test_straight_through_gradient(self):
        logits = Tensor(np.random.default_rng(4).normal(size=(3, 5)),
                        requires_grad=True)
        out = gumbel_sigmoid(logits, tau=1.0, hard=True,
                             rng=np.random.default_rng(5))
        out.sum().backward()
        assert logits.grad is not None
        # Soft-sample gradients: sigmoid'(z)/tau > 0 everywhere.
        assert (logits.grad > 0).all()

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            gumbel_sigmoid(Tensor(np.zeros(3)), tau=-1.0)

    def test_low_tau_sharpens(self):
        """Small tau pushes soft samples toward {0,1}."""
        rng_a, rng_b = (np.random.default_rng(6), np.random.default_rng(6))
        logits = Tensor(np.random.default_rng(7).normal(size=1000))
        soft_hi = gumbel_sigmoid(logits, tau=5.0, hard=False, rng=rng_a)
        soft_lo = gumbel_sigmoid(logits, tau=0.1, hard=False, rng=rng_b)
        spread_hi = np.abs(soft_hi.data - 0.5).mean()
        spread_lo = np.abs(soft_lo.data - 0.5).mean()
        assert spread_lo > spread_hi
