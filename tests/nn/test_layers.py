"""Tests for layers, modules, RNNs, attention, optimizers, and Gumbel-Softmax."""

import numpy as np
import pytest

from repro.nn import (GRU, LSTM, Adam, BiLSTM, Conv1d, Dropout, Embedding,
                      FeedForward, LayerNorm, Linear, MaxPool1d, Module,
                      MultiHeadAttention, Parameter, PositionalEmbedding,
                      SGD, Tensor, TemperatureSchedule, TransformerEncoder,
                      causal_mask, clip_grad_norm, gumbel_softmax, sparsemax)
from repro.nn import functional as F

RNG = np.random.default_rng(2)


def rand_rng():
    return np.random.default_rng(123)


class TestLinear:
    def test_forward_shape_and_value(self):
        layer = Linear(4, 3, rng=rand_rng())
        x = Tensor(RNG.normal(size=(5, 4)))
        out = layer(x)
        assert out.shape == (5, 3)
        np.testing.assert_allclose(
            out.data, x.data @ layer.weight.data + layer.bias.data)

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False, rng=rand_rng())
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradients_flow(self):
        layer = Linear(4, 2, rng=rand_rng())
        x = Tensor(RNG.normal(size=(3, 4)))
        layer(x).sum().backward()
        assert layer.weight.grad is not None
        np.testing.assert_allclose(layer.bias.grad, np.full(2, 3.0))


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 6, rng=rand_rng())
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 6)

    def test_duplicate_ids_accumulate_grad(self):
        emb = Embedding(5, 3, rng=rand_rng())
        emb(np.array([2, 2, 2])).sum().backward()
        np.testing.assert_allclose(emb.weight.grad[2], np.full(3, 3.0))
        np.testing.assert_allclose(emb.weight.grad[0], np.zeros(3))

    def test_padding_idx_row_zero(self):
        emb = Embedding(5, 3, padding_idx=0, rng=rand_rng())
        np.testing.assert_allclose(emb(np.array([0])).data, np.zeros((1, 3)))

    def test_out_of_range_raises(self):
        emb = Embedding(5, 3, rng=rand_rng())
        with pytest.raises(IndexError):
            emb(np.array([7]))


class TestLayerNorm:
    def test_output_statistics(self):
        ln = LayerNorm(16)
        x = Tensor(RNG.normal(2.0, 3.0, size=(4, 16)))
        out = ln(x)
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(4), atol=1e-7)
        np.testing.assert_allclose(out.data.std(axis=-1), np.ones(4), rtol=1e-3)

    def test_gradcheck(self):
        ln = LayerNorm(5)
        x = Tensor(RNG.normal(size=(2, 5)), requires_grad=True)
        (ln(x) * Tensor(RNG.normal(size=(2, 5)))).sum().backward()
        assert x.grad is not None and np.isfinite(x.grad).all()


class TestConv1d:
    def test_matches_manual_convolution(self):
        conv = Conv1d(2, 3, kernel_size=2, rng=rand_rng())
        x = RNG.normal(size=(1, 2, 5))
        out = conv(Tensor(x))
        assert out.shape == (1, 3, 4)
        # Manual: out[0, o, t] = sum_{c,k} w[o, c*K+k... ] -- reconstruct cols
        for t in range(4):
            col = np.concatenate([x[0, :, t + k] for k in range(2)])
            # our weight layout: (out, C*K) with col order (C, K) flattened as
            # channel-major because stacking is (kernel) then transpose ->
            # cols are [c0k0, c0k1, c1k0, c1k1]? verify via layer itself:
            pass
        # Differentiability and shape are the critical contracts; value parity
        # with a reference implementation:
        ref = np.zeros((1, 3, 4))
        w = conv.weight.data.reshape(3, 2, 2)  # (out, C, K) per our col order
        for o in range(3):
            for t in range(4):
                ref[0, o, t] = (w[o] * x[0, :, t:t + 2]).sum() + conv.bias.data[o]
        np.testing.assert_allclose(out.data, ref, rtol=1e-10)

    def test_stride(self):
        conv = Conv1d(1, 1, kernel_size=2, stride=2, rng=rand_rng())
        out = conv(Tensor(RNG.normal(size=(2, 1, 6))))
        assert out.shape == (2, 1, 3)

    def test_too_short_raises(self):
        conv = Conv1d(1, 1, kernel_size=5, rng=rand_rng())
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((1, 1, 3))))

    def test_gradients(self):
        conv = Conv1d(2, 2, kernel_size=3, rng=rand_rng())
        x = Tensor(RNG.normal(size=(2, 2, 6)), requires_grad=True)
        conv(x).sum().backward()
        assert x.grad.shape == (2, 2, 6)
        assert conv.weight.grad is not None

    def test_maxpool(self):
        pool = MaxPool1d()
        x = Tensor(np.array([[[1.0, 5.0, 2.0]]]))
        np.testing.assert_allclose(pool(x).data, [[5.0]])


class TestRNNs:
    def test_gru_shapes(self):
        gru = GRU(4, 6, rng=rand_rng())
        out, h = gru(Tensor(RNG.normal(size=(3, 7, 4))))
        assert out.shape == (3, 7, 6)
        assert h.shape == (3, 6)
        np.testing.assert_allclose(out.data[:, -1], h.data)

    def test_lstm_shapes(self):
        lstm = LSTM(4, 5, rng=rand_rng())
        out, (h, c) = lstm(Tensor(RNG.normal(size=(2, 6, 4))))
        assert out.shape == (2, 6, 5)
        assert h.shape == c.shape == (2, 5)

    def test_bilstm_directions_differ(self):
        bi = BiLSTM(4, 5, rng=rand_rng())
        x = Tensor(RNG.normal(size=(2, 6, 4)))
        left, right = bi(x)
        assert left.shape == right.shape == (2, 6, 5)
        assert not np.allclose(left.data, right.data)

    def test_bilstm_backward_state_reverses(self):
        """H^R at the last position only saw the last item."""
        bi = BiLSTM(3, 4, rng=rand_rng())
        x1 = RNG.normal(size=(1, 5, 3))
        x2 = x1.copy()
        x2[0, 0] += 10.0  # perturb the first item
        _, r1 = bi(Tensor(x1))
        _, r2 = bi(Tensor(x2))
        # The backward pass's state at the LAST position depends only on the
        # last item, so perturbing the first item must not change it.
        np.testing.assert_allclose(r1.data[0, -1], r2.data[0, -1], atol=1e-12)
        # But it must change the backward state at the first position.
        assert not np.allclose(r1.data[0, 0], r2.data[0, 0])

    def test_rnn_gradients_flow_through_time(self):
        gru = GRU(3, 3, rng=rand_rng())
        x = Tensor(RNG.normal(size=(1, 8, 3)), requires_grad=True)
        out, _ = gru(x)
        out[:, -1, :].sum().backward()
        assert np.abs(x.grad[0, 0]).sum() > 0  # gradient reached t=0


class TestAttention:
    def test_output_shape(self):
        mha = MultiHeadAttention(8, num_heads=2, dropout=0.0, rng=rand_rng())
        x = Tensor(RNG.normal(size=(2, 5, 8)))
        assert mha(x, x, x).shape == (2, 5, 8)

    def test_causal_mask_blocks_future(self):
        mha = MultiHeadAttention(8, num_heads=2, dropout=0.0, rng=rand_rng())
        mha.eval()
        x1 = RNG.normal(size=(1, 4, 8))
        x2 = x1.copy()
        x2[0, -1] += 5.0  # change only the last position
        mask = causal_mask(4)
        out1 = mha(Tensor(x1), Tensor(x1), Tensor(x1), attn_mask=mask)
        out2 = mha(Tensor(x2), Tensor(x2), Tensor(x2), attn_mask=mask)
        # Earlier positions cannot see the change at the last position.
        np.testing.assert_allclose(out1.data[0, :3], out2.data[0, :3], atol=1e-10)
        assert not np.allclose(out1.data[0, 3], out2.data[0, 3])

    def test_transformer_encoder(self):
        enc = TransformerEncoder(8, num_layers=2, num_heads=2, dropout=0.0,
                                 rng=rand_rng())
        out = enc(Tensor(RNG.normal(size=(2, 5, 8))))
        assert out.shape == (2, 5, 8)

    def test_dim_head_mismatch_raises(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(7, num_heads=2)


class TestSparsemax:
    def test_simplex_output(self):
        out = sparsemax(Tensor(RNG.normal(size=(4, 9))))
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4), rtol=1e-10)
        assert (out.data >= 0).all()

    def test_produces_exact_zeros(self):
        out = sparsemax(Tensor(np.array([[5.0, 0.0, -5.0]])))
        assert out.data[0, 2] == 0.0
        assert out.data[0, 0] > 0.9

    def test_uniform_input_uniform_output(self):
        out = sparsemax(Tensor(np.zeros((1, 5))))
        np.testing.assert_allclose(out.data, np.full((1, 5), 0.2))

    def test_gradient_finite_difference(self):
        x = RNG.normal(size=(6,))
        t = Tensor(x.copy(), requires_grad=True)
        weights = RNG.normal(size=(6,))
        (sparsemax(t.reshape(1, 6)) * Tensor(weights)).sum().backward()
        eps = 1e-6
        num = np.zeros(6)
        for i in range(6):
            xp, xm = x.copy(), x.copy()
            xp[i] += eps
            xm[i] -= eps
            fp = (sparsemax(Tensor(xp.reshape(1, 6))).data * weights).sum()
            fm = (sparsemax(Tensor(xm.reshape(1, 6))).data * weights).sum()
            num[i] = (fp - fm) / (2 * eps)
        np.testing.assert_allclose(t.grad, num, atol=1e-4)


class TestGumbel:
    def test_hard_one_hot(self):
        logits = Tensor(RNG.normal(size=(4, 10)))
        out = gumbel_softmax(logits, tau=0.5, hard=True,
                             rng=np.random.default_rng(3))
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4))
        assert ((out.data == 0) | (out.data == 1)).all()

    def test_soft_sums_to_one(self):
        logits = Tensor(RNG.normal(size=(4, 10)))
        out = gumbel_softmax(logits, tau=1.0, hard=False,
                             rng=np.random.default_rng(3))
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4))
        assert not ((out.data == 0) | (out.data == 1)).all()

    def test_deterministic_picks_argmax(self):
        logits = Tensor(np.array([[0.1, 3.0, 0.2]]))
        out = gumbel_softmax(logits, tau=0.1, hard=True, deterministic=True)
        np.testing.assert_allclose(out.data, [[0.0, 1.0, 0.0]])

    def test_straight_through_gradient(self):
        logits = Tensor(RNG.normal(size=(2, 5)), requires_grad=True)
        out = gumbel_softmax(logits, tau=1.0, hard=True,
                             rng=np.random.default_rng(3))
        (out * Tensor(RNG.normal(size=(2, 5)))).sum().backward()
        assert logits.grad is not None
        assert np.abs(logits.grad).sum() > 0

    def test_low_tau_concentrates(self):
        rng = np.random.default_rng(4)
        logits = Tensor(np.array([[0.0, 4.0, 0.0]]))
        hits = sum(
            gumbel_softmax(logits, tau=0.05, hard=True, rng=rng).data.argmax() == 1
            for _ in range(50))
        assert hits >= 45

    def test_invalid_tau_raises(self):
        with pytest.raises(ValueError):
            gumbel_softmax(Tensor(np.zeros((1, 3))), tau=0.0)

    def test_temperature_schedule(self):
        sched = TemperatureSchedule(initial_tau=1.0, anneal_rate=0.5,
                                    anneal_every=2, min_tau=0.2)
        taus = [sched.step() for _ in range(8)]
        assert taus[0] == 1.0 and taus[1] == 0.5 and taus[3] == 0.25
        assert min(taus) == 0.2  # floor respected
        sched.reset()
        assert sched.tau == 1.0


class TestModuleMechanics:
    def _tiny_model(self):
        class Tiny(Module):
            def __init__(self):
                super().__init__()
                self.fc1 = Linear(3, 4, rng=rand_rng())
                self.blocks = [Linear(4, 4, rng=rand_rng()) for _ in range(2)]
                self.drop = Dropout(0.5)

            def forward(self, x):
                x = self.fc1(x)
                for b in self.blocks:
                    x = b(x)
                return self.drop(x)

        return Tiny()

    def test_parameter_collection_recurses_lists(self):
        model = self._tiny_model()
        # fc1 (w+b) + 2 blocks (w+b each) = 6 parameters
        assert len(model.parameters()) == 6

    def test_train_eval_propagates(self):
        model = self._tiny_model()
        model.eval()
        assert not model.drop.training
        model.train()
        assert model.drop.training

    def test_state_dict_roundtrip(self):
        model = self._tiny_model()
        state = model.state_dict()
        for p in model.parameters():
            p.data += 1.0
        model.load_state_dict(state)
        np.testing.assert_allclose(model.fc1.weight.data, state["fc1.weight"])

    def test_state_dict_mismatch_raises(self):
        model = self._tiny_model()
        state = model.state_dict()
        state["bogus"] = np.zeros(3)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_zero_grad(self):
        model = self._tiny_model()
        model.eval()
        model(Tensor(RNG.normal(size=(2, 3)))).sum().backward()
        assert model.fc1.weight.grad is not None
        model.zero_grad()
        assert model.fc1.weight.grad is None


class TestOptim:
    def test_sgd_descends_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert abs(p.data[0]) < 1e-3

    def test_adam_descends_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        np.testing.assert_allclose(p.data, np.zeros(2), atol=1e-2)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (p * 0.0).sum().backward()
        opt.step()
        assert p.data[0] < 1.0

    def test_momentum_accelerates(self):
        losses = {}
        for momentum in (0.0, 0.9):
            p = Parameter(np.array([10.0]))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                (p * p).sum().backward()
                opt.step()
            losses[momentum] = abs(p.data[0])
        assert losses[0.9] < losses[0.0]

    def test_clip_grad_norm(self):
        p = Parameter(np.array([3.0, 4.0]))
        p.grad = np.array([30.0, 40.0])
        norm = clip_grad_norm([p], max_norm=5.0)
        np.testing.assert_allclose(norm, 50.0)
        np.testing.assert_allclose(np.linalg.norm(p.grad), 5.0)

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            Adam([])


class TestPositionalEmbedding:
    def test_shape_and_limit(self):
        pe = PositionalEmbedding(10, 4, rng=rand_rng())
        assert pe(5).shape == (5, 4)
        with pytest.raises(ValueError):
            pe(11)


class TestFeedForward:
    def test_roundtrip_shape(self):
        ffn = FeedForward(8, dropout=0.0, rng=rand_rng())
        out = ffn(Tensor(RNG.normal(size=(2, 3, 8))))
        assert out.shape == (2, 3, 8)

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            FeedForward(8, activation="swishish")
