"""Tests for Module introspection helpers not covered elsewhere."""

import numpy as np

from repro.nn import Linear, Module, Sequential, Tensor


class TestSequential:
    def test_chains_modules(self):
        seq = Sequential(Linear(4, 8, rng=np.random.default_rng(0)),
                         Linear(8, 2, rng=np.random.default_rng(1)))
        out = seq(Tensor(np.random.default_rng(2).normal(size=(3, 4))))
        assert out.shape == (3, 2)

    def test_parameters_collected(self):
        seq = Sequential(Linear(4, 8), Linear(8, 2))
        assert len(seq.parameters()) == 4  # two weights + two biases


class TestModulesIterator:
    def test_yields_nested(self):
        class Outer(Module):
            def __init__(self):
                super().__init__()
                self.inner = Sequential(Linear(2, 2), Linear(2, 2))

        outer = Outer()
        kinds = [type(m).__name__ for m in outer.modules()]
        assert kinds.count("Linear") == 2
        assert "Sequential" in kinds and "Outer" in kinds
