"""Tests for the substrate profiler and its Trainer integration."""

import numpy as np

from repro.nn import Tensor, profiler
from repro.nn import functional as F
from repro.nn import layers, tensor as tensor_mod


class TestProfiler:
    def test_records_forward_and_backward(self):
        profiler.reset()
        with profiler.profile():
            x = Tensor(np.random.default_rng(0).normal(size=(4, 5)),
                       requires_grad=True)
            loss = F.cross_entropy(x, np.zeros(4, dtype=np.int64))
            loss.backward()
        stats = profiler.as_dict()
        assert "fused.cross_entropy" in stats
        ce = stats["fused.cross_entropy"]
        assert ce["forward_calls"] == 1
        assert ce["backward_calls"] == 1
        assert ce["forward_seconds"] >= 0.0
        assert ce["nodes"] >= 1

    def test_disable_restores_originals(self):
        # Zero-overhead-when-off contract: after disable, the module
        # attributes are the original functions, not wrapper shims.
        original_softmax = F.softmax
        original_matmul = tensor_mod.Tensor.matmul
        with profiler.profile():
            assert F.softmax is not original_softmax
        assert F.softmax is original_softmax
        assert tensor_mod.Tensor.matmul is original_matmul
        assert layers.Linear.forward.__qualname__.startswith("Linear.")

    def test_reset_clears_stats(self):
        profiler.reset()
        with profiler.profile():
            Tensor(np.ones((2, 2)), requires_grad=True).sum().backward()
        assert profiler.as_dict()
        profiler.reset()
        assert profiler.as_dict() == {}

    def test_summary_is_table(self):
        profiler.reset()
        with profiler.profile():
            (Tensor(np.ones((3, 3)), requires_grad=True)
             @ Tensor(np.ones((3, 3)))).sum().backward()
        text = profiler.summary()
        assert "op" in text and "fwd ms" in text
        assert "matmul" in text

    def test_double_enable_is_idempotent(self):
        original_softmax = F.softmax
        with profiler.profile():
            wrapped = F.softmax
            profiler.enable()  # no-op: must not double-wrap
            assert F.softmax is wrapped
        assert F.softmax is original_softmax


class TestTrainerProfileFlag:
    def _tiny_run(self, profile):
        from repro.data import generate, leave_one_out_split
        from repro.models import GRU4Rec
        from repro.train import TrainConfig, Trainer

        split = leave_one_out_split(generate("beauty", seed=0, scale=0.1),
                                    max_len=10)
        model = GRU4Rec(num_items=split.num_items, dim=8, max_len=10,
                        rng=np.random.default_rng(0))
        config = TrainConfig(epochs=1, batch_size=32, profile=profile)
        return Trainer(model, split, config).fit()

    def test_profile_true_populates_result(self):
        result = self._tiny_run(profile=True)
        assert result.profile, "TrainResult.profile should be populated"
        assert result.profile_table
        assert any(stats["forward_calls"] > 0
                   for stats in result.profile.values())

    def test_profile_false_leaves_result_empty(self):
        result = self._tiny_run(profile=False)
        assert result.profile is None
        assert result.profile_table == ""
