"""Tests for the central seeded RNG utility (repro.nn.rng)."""

import numpy as np

from repro.nn import rng as rng_mod
from repro.nn import resolve_rng, set_global_seed


class TestResolveRng:
    def test_explicit_rng_passes_through(self):
        rng = np.random.default_rng(7)
        assert resolve_rng(rng) is rng

    def test_fallback_is_the_global_generator(self):
        set_global_seed(0)
        assert resolve_rng(None) is rng_mod.default_generator()

    def test_fallback_is_seeded_and_reproducible(self):
        set_global_seed(123)
        first = resolve_rng(None).normal(size=5)
        set_global_seed(123)
        second = resolve_rng(None).normal(size=5)
        np.testing.assert_array_equal(first, second)

    def test_explicit_seed_outputs_unchanged(self):
        # The resolve_rng rollout must not change fixed-seed behaviour of
        # components that receive an explicit generator.
        from repro.models import GRU4Rec

        a = GRU4Rec(num_items=20, dim=8, max_len=10,
                    rng=np.random.default_rng(0))
        b = GRU4Rec(num_items=20, dim=8, max_len=10,
                    rng=np.random.default_rng(0))
        for (name, pa), (_, pb) in zip(a.named_parameters(),
                                       b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data, err_msg=name)

    def test_default_construction_is_deterministic(self):
        # With no rng passed anywhere, the global seeded fallback makes
        # construction reproducible run-to-run (previously each call site
        # spun up an unseeded default_rng()).
        from repro.models import GRU4Rec

        set_global_seed(0)
        a = GRU4Rec(num_items=20, dim=8, max_len=10)
        set_global_seed(0)
        b = GRU4Rec(num_items=20, dim=8, max_len=10)
        for (name, pa), (_, pb) in zip(a.named_parameters(),
                                       b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data, err_msg=name)
