"""Detailed RNN-cell tests: initialization conventions and step semantics."""

import numpy as np
import pytest

from repro.nn import GRU, GRUCell, LSTM, LSTMCell, Tensor

RNG = np.random.default_rng(91)


class TestLSTMCell:
    def test_forget_gate_bias_initialized_to_one(self):
        cell = LSTMCell(4, 6, rng=np.random.default_rng(0))
        d = cell.hidden_dim
        np.testing.assert_allclose(cell.bias.data[d:2 * d], 1.0)
        np.testing.assert_allclose(cell.bias.data[:d], 0.0)

    def test_state_shapes(self):
        cell = LSTMCell(4, 6, rng=np.random.default_rng(0))
        h = Tensor(np.zeros((3, 6)))
        c = Tensor(np.zeros((3, 6)))
        h2, c2 = cell(Tensor(RNG.normal(size=(3, 4))), (h, c))
        assert h2.shape == c2.shape == (3, 6)

    def test_cell_state_bounded_by_gates(self):
        """With zero input and zero state, output stays at zero."""
        cell = LSTMCell(4, 6, rng=np.random.default_rng(0))
        cell.bias.data[:] = 0.0
        zeros = Tensor(np.zeros((2, 6)))
        h, c = cell(Tensor(np.zeros((2, 4))), (zeros, zeros))
        np.testing.assert_allclose(c.data, 0.0, atol=1e-12)
        np.testing.assert_allclose(h.data, 0.0, atol=1e-12)


class TestGRUCell:
    def test_interpolation_property(self):
        """GRU output is an interpolation: z=1 returns the previous state."""
        cell = GRUCell(4, 6, rng=np.random.default_rng(0))
        # Force the update gate to saturate at 1 via a large bias.
        cell.b_ih.data[:6] = 100.0
        h = Tensor(RNG.normal(size=(2, 6)))
        out = cell(Tensor(RNG.normal(size=(2, 4))), h)
        np.testing.assert_allclose(out.data, h.data, atol=1e-8)

    def test_zero_update_gate_ignores_history_magnitude(self):
        """z=0 makes the output the candidate, independent of |h| scale
        only through the reset path."""
        cell = GRUCell(4, 6, rng=np.random.default_rng(0))
        cell.b_ih.data[:6] = -100.0  # z -> 0
        cell.w_hh.data[:, :6] = 0.0
        x = Tensor(RNG.normal(size=(1, 4)))
        out1 = cell(x, Tensor(np.zeros((1, 6))))
        assert np.isfinite(out1.data).all()


class TestSequenceSemantics:
    def test_gru_outputs_match_manual_unroll(self):
        gru = GRU(3, 5, rng=np.random.default_rng(0))
        x = RNG.normal(size=(2, 4, 3))
        outputs, last = gru(Tensor(x))
        h = Tensor(np.zeros((2, 5)))
        for t in range(4):
            h = gru.cell(Tensor(x[:, t]), h)
            np.testing.assert_allclose(outputs.data[:, t], h.data, atol=1e-12)
        np.testing.assert_allclose(last.data, h.data)

    def test_lstm_initial_state_honored(self):
        lstm = LSTM(3, 5, rng=np.random.default_rng(0))
        x = Tensor(RNG.normal(size=(1, 3, 3)))
        zero_out, _ = lstm(x)
        init = (Tensor(np.ones((1, 5))), Tensor(np.ones((1, 5))))
        warm_out, _ = lstm(x, state=init)
        assert not np.allclose(zero_out.data, warm_out.data)

    def test_gradients_magnitude_finite_long_sequence(self):
        """No gradient explosion over a 60-step unroll."""
        lstm = LSTM(3, 3, rng=np.random.default_rng(0))
        x = Tensor(RNG.normal(size=(1, 60, 3)), requires_grad=True)
        out, _ = lstm(x)
        out[:, -1].sum().backward()
        assert np.isfinite(x.grad).all()
        assert np.abs(x.grad).max() < 1e3
