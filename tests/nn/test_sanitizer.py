"""Tests for the runtime autograd sanitizer.

Covers the ISSUE's planted fused-kernel bugs — a saved tensor mutated
before backward, a NaN emitted in forward/backward, a dropped gradient —
plus broadcast-grad detection, zero-overhead-when-off, and the Trainer
``sanitize=True`` integration (a clean epoch must stay clean).
"""

import numpy as np
import pytest

from repro.nn import (LSTMCell, GRUCell, SanitizerError, Tensor, sanitizer,
                      scaled_dot_product_attention)
from repro.nn import functional as F
from repro.nn.rnn import gru_sequence, lstm_sequence
from repro.nn.tensor import Tensor as RawTensor


def _original_make():
    return RawTensor.__dict__["_make"].__func__


# ----------------------------------------------------------------------
# Deliberately-buggy fused ops (the ISSUE's planted bugs)
# ----------------------------------------------------------------------
def buggy_mutates_saved(x: Tensor) -> Tensor:
    """Fused op that corrupts its saved input before backward runs."""
    x_data = x.data

    def backward(grad):
        return (grad * x_data,)

    out = Tensor._make(x.data * x.data, (x,), backward)
    x.mul_(2.0)  # the bug: in-place mutation after saving x_data
    return out


def buggy_nan_forward(x: Tensor) -> Tensor:
    data = x.data.copy()
    data.flat[0] = np.nan  # the bug
    return Tensor._make(data, (x,), lambda grad: (grad,))


def buggy_nan_backward(x: Tensor) -> Tensor:
    def backward(grad):
        g = grad.copy()
        g.flat[0] = np.nan  # the bug
        return (g,)

    return Tensor._make(x.data + 1.0, (x,), backward)


def buggy_broadcast_grad(x: Tensor) -> Tensor:
    def backward(grad):
        # the bug: reduced shape that would silently broadcast over rows
        return (grad.sum(axis=0, keepdims=True),)

    return Tensor._make(x.data * 3.0, (x,), backward)


class TestPlantedBugs:
    def setup_method(self):
        sanitizer.reset()

    def test_saved_tensor_mutation_caught(self):
        x = Tensor(np.arange(1.0, 5.0), requires_grad=True)
        with sanitizer.watch():
            out = buggy_mutates_saved(x)
            with pytest.raises(SanitizerError, match="saved-tensor-modified"):
                out.sum().backward()
        assert sanitizer.anomalies[0].kind == "saved-tensor-modified"
        assert "buggy_mutates_saved" in sanitizer.anomalies[0].op

    def test_nan_forward_caught_at_creation(self):
        x = Tensor(np.ones(4), requires_grad=True)
        with sanitizer.watch():
            with pytest.raises(SanitizerError, match="non-finite-forward"):
                buggy_nan_forward(x)
        assert sanitizer.anomalies[0].op == "buggy_nan_forward"

    def test_nan_backward_caught(self):
        x = Tensor(np.ones(4), requires_grad=True)
        with sanitizer.watch():
            out = buggy_nan_backward(x)
            with pytest.raises(SanitizerError, match="non-finite-grad"):
                out.sum().backward()

    def test_broadcast_grad_caught(self):
        x = Tensor(np.ones((3, 4)), requires_grad=True)
        with sanitizer.watch():
            out = buggy_broadcast_grad(x)
            with pytest.raises(SanitizerError, match="broadcast-grad"):
                out.sum().backward()
        assert "(1, 4)" in sanitizer.anomalies[0].detail

    def test_dropped_grad_reported_as_dead(self):
        used = Tensor(np.ones(3), requires_grad=True)
        unused = Tensor(np.ones(3), requires_grad=True)
        with sanitizer.watch():
            (used * 2.0).sum().backward()
            sanitizer.watch_dead_grads([("used", used), ("unused", unused)])
        dead = sanitizer.finalize_dead_grads()
        assert dead == ["unused"]
        kinds = [a.kind for a in sanitizer.anomalies]
        assert kinds == ["dead-grad"]
        assert "unused" in sanitizer.anomalies[0].detail

    def test_dead_grads_use_intersection_across_steps(self):
        # A parameter that gets a grad in *any* step is not dead.
        p = Tensor(np.ones(3), requires_grad=True)
        sanitizer.watch_dead_grads([("p", p)])  # step 1: no grad yet
        p.grad = np.ones(3)
        sanitizer.watch_dead_grads([("p", p)])  # step 2: has grad
        assert sanitizer.finalize_dead_grads() == []
        assert sanitizer.anomalies == []

    def test_provenance_names_creating_site(self):
        x = Tensor(np.ones(4), requires_grad=True)
        with sanitizer.watch():
            out = buggy_mutates_saved(x)
            with pytest.raises(SanitizerError) as err:
                out.sum().backward()
        message = str(err.value)
        assert "buggy_mutates_saved" in message
        assert "test_sanitizer.py" in message  # creating stack frame


class TestFusedKernels:
    """The sanitizer guards the real PR-1 fused kernels."""

    def setup_method(self):
        sanitizer.reset()

    def test_sdpa_saved_value_mutation(self):
        rng = np.random.default_rng(0)
        q = Tensor(rng.normal(size=(2, 4, 8)), requires_grad=True)
        k = Tensor(rng.normal(size=(2, 4, 8)), requires_grad=True)
        v = Tensor(rng.normal(size=(2, 4, 8)), requires_grad=True)
        with sanitizer.watch():
            out = scaled_dot_product_attention(q, k, v)
            v.mul_(2.0)
            with pytest.raises(SanitizerError,
                               match="scaled_dot_product_attention"):
                out.sum().backward()

    def test_lstm_sequence_weight_mutation(self):
        rng = np.random.default_rng(1)
        cell = LSTMCell(4, 4, rng=np.random.default_rng(0))
        x = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        with sanitizer.watch():
            out = lstm_sequence(x, cell.w_ih, cell.w_hh, cell.bias, 4)
            cell.w_hh.add_(0.1)
            with pytest.raises(SanitizerError, match="lstm_sequence"):
                out.sum().backward()

    def test_gru_sequence_weight_mutation(self):
        rng = np.random.default_rng(2)
        cell = GRUCell(4, 4, rng=np.random.default_rng(0))
        x = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        with sanitizer.watch():
            out = gru_sequence(x, cell.w_ih, cell.w_hh, cell.b_ih,
                               cell.b_hh, 4)
            cell.w_ih.fill_(0.0)
            with pytest.raises(SanitizerError, match="gru_sequence"):
                out.sum().backward()

    def test_clean_fused_graph_passes(self):
        rng = np.random.default_rng(3)
        x = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
        with sanitizer.watch():
            F.cross_entropy(F.linear(x, Tensor(rng.normal(size=(6, 5)),
                                               requires_grad=True)),
                            np.zeros(4, dtype=np.int64)).backward()
        assert sanitizer.anomalies == []


class TestZeroOverheadWhenOff:
    def test_make_restored_after_watch(self):
        original = RawTensor.__dict__["_make"].__func__
        with sanitizer.watch():
            assert RawTensor.__dict__["_make"].__func__ is not original
        assert RawTensor.__dict__["_make"].__func__ is original

    def test_disabled_sanitizer_adds_no_graph_node_overhead(self):
        # With the sanitizer off, nodes keep their raw backward closures:
        # no version snapshots, no wrapper frames.
        x = Tensor(np.ones(3), requires_grad=True)
        out = x * 2.0
        assert out._backward.__name__ != "checked_backward"
        with sanitizer.watch():
            wrapped = x * 2.0
            assert wrapped._backward.__name__ == "checked_backward"
        after = x * 2.0
        assert after._backward.__name__ != "checked_backward"

    def test_double_enable_is_idempotent(self):
        sanitizer.enable()
        patched = RawTensor.__dict__["_make"].__func__
        sanitizer.enable()
        assert RawTensor.__dict__["_make"].__func__ is patched
        sanitizer.disable()
        assert RawTensor.__dict__["_make"].__func__ is _original_make()

    def test_disable_restores_even_after_error(self):
        original = _original_make()
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(SanitizerError):
            with sanitizer.watch():
                buggy_nan_forward(x)
        assert RawTensor.__dict__["_make"].__func__ is original


class TestTrainerSanitizeFlag:
    def _tiny_run(self, sanitize):
        from repro.data import generate, leave_one_out_split
        from repro.models import GRU4Rec
        from repro.train import TrainConfig, Trainer

        split = leave_one_out_split(generate("ml-100k", seed=0, scale=0.1),
                                    max_len=10)
        model = GRU4Rec(num_items=split.num_items, dim=8, max_len=10,
                        rng=np.random.default_rng(0))
        config = TrainConfig(epochs=1, batch_size=32, sanitize=sanitize)
        return Trainer(model, split, config).fit()

    def test_sanitized_epoch_is_clean(self):
        result = self._tiny_run(sanitize=True)
        assert result.sanitizer_report == []
        assert result.dead_parameters == []
        # instrumentation must be removed after fit()
        assert RawTensor.__dict__["_make"].__func__ is _original_make()

    def test_sanitize_false_leaves_result_empty(self):
        result = self._tiny_run(sanitize=False)
        assert result.sanitizer_report is None
        assert result.dead_parameters == []
