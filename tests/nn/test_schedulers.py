"""Tests for learning-rate schedulers."""

import numpy as np
import pytest

from repro.nn import SGD, Parameter
from repro.nn.schedulers import (CosineAnnealingLR, ExponentialLR,
                                 ReduceOnPlateau, StepLR, WarmupLR)


def make_opt(lr=0.1):
    return SGD([Parameter(np.zeros(2))], lr=lr)


class TestStepLR:
    def test_decay_schedule(self):
        opt = make_opt(0.1)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(5)]
        np.testing.assert_allclose(lrs, [0.1, 0.01, 0.01, 0.001, 0.001])

    def test_invalid_step_size(self):
        with pytest.raises(ValueError):
            StepLR(make_opt(), step_size=0)


class TestExponential:
    def test_geometric_decay(self):
        sched = ExponentialLR(make_opt(1.0), gamma=0.5)
        lrs = [sched.step() for _ in range(3)]
        np.testing.assert_allclose(lrs, [0.5, 0.25, 0.125])


class TestCosine:
    def test_endpoints(self):
        opt = make_opt(1.0)
        sched = CosineAnnealingLR(opt, t_max=10, min_lr=0.0)
        lrs = [sched.step() for _ in range(10)]
        assert lrs[0] < 1.0
        np.testing.assert_allclose(lrs[-1], 0.0, atol=1e-12)
        # Monotone non-increasing.
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_stays_at_min_after_t_max(self):
        sched = CosineAnnealingLR(make_opt(1.0), t_max=2, min_lr=0.1)
        for _ in range(5):
            lr = sched.step()
        np.testing.assert_allclose(lr, 0.1)

    def test_invalid_t_max(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(make_opt(), t_max=0)


class TestWarmup:
    def test_linear_ramp(self):
        sched = WarmupLR(make_opt(1.0), warmup=4)
        lrs = [sched.step() for _ in range(4)]
        np.testing.assert_allclose(lrs, [0.25, 0.5, 0.75, 1.0])

    def test_delegates_after_warmup(self):
        opt = make_opt(1.0)
        sched = WarmupLR(opt, warmup=2, after=ExponentialLR(opt, gamma=0.5))
        lrs = [sched.step() for _ in range(4)]
        np.testing.assert_allclose(lrs, [0.5, 1.0, 0.5, 0.25])

    def test_constant_after_warmup_without_delegate(self):
        sched = WarmupLR(make_opt(1.0), warmup=1)
        lrs = [sched.step() for _ in range(3)]
        np.testing.assert_allclose(lrs, [1.0, 1.0, 1.0])


class TestReduceOnPlateau:
    def test_reduces_after_patience(self):
        opt = make_opt(0.1)
        sched = ReduceOnPlateau(opt, factor=0.5, patience=2)
        sched.step(0.5)   # best
        sched.step(0.4)   # bad 1
        lr = sched.step(0.4)  # bad 2 -> reduce
        np.testing.assert_allclose(lr, 0.05)

    def test_improvement_resets(self):
        opt = make_opt(0.1)
        sched = ReduceOnPlateau(opt, factor=0.5, patience=2)
        sched.step(0.5)
        sched.step(0.4)
        sched.step(0.6)   # improvement resets the counter
        lr = sched.step(0.5)
        np.testing.assert_allclose(lr, 0.1)

    def test_min_lr_floor(self):
        opt = make_opt(1e-6)
        sched = ReduceOnPlateau(opt, factor=0.5, patience=1, min_lr=1e-6)
        sched.step(1.0)
        lr = sched.step(0.0)
        assert lr == 1e-6

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            ReduceOnPlateau(make_opt(), factor=1.5)
