"""Gradient correctness tests for the autograd engine.

Every differentiable op is checked against central finite differences on
random inputs.  These tests are the bedrock of the whole reproduction: if
they pass, every model built on ``repro.nn`` trains by correct gradients.
"""

import numpy as np
import pytest

from repro.nn import Tensor, no_grad
from repro.nn.tensor import _unbroadcast

RNG = np.random.default_rng(0)
EPS = 1e-6
TOL = 1e-4


def numeric_grad(fn, x: np.ndarray) -> np.ndarray:
    """Central finite-difference gradient of scalar fn at x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + EPS
        hi = fn(x)
        flat[i] = orig - EPS
        lo = fn(x)
        flat[i] = orig
        grad_flat[i] = (hi - lo) / (2 * EPS)
    return grad


def check_unary(op, shape=(3, 4), positive=False, low=-2.0, high=2.0):
    data = RNG.uniform(low, high, size=shape)
    if positive:
        data = np.abs(data) + 0.5
    t = Tensor(data.copy(), requires_grad=True)
    out = op(t)
    out.sum().backward()
    num = numeric_grad(lambda arr: float(op(Tensor(arr)).data.sum()), data.copy())
    np.testing.assert_allclose(t.grad, num, rtol=TOL, atol=TOL)


class TestElementwise:
    def test_add(self):
        check_unary(lambda t: t + 3.0)

    def test_add_tensors_broadcast(self):
        a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(4,)), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))
        np.testing.assert_allclose(b.grad, np.full((4,), 3.0))

    def test_mul(self):
        check_unary(lambda t: t * t)

    def test_sub_div(self):
        check_unary(lambda t: (t - 1.5) / 2.0)

    def test_div_by_tensor(self):
        a = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        b = Tensor(np.abs(RNG.normal(size=(3,))) + 1.0, requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, 1.0 / b.data, rtol=TOL)
        np.testing.assert_allclose(b.grad, -a.data / b.data ** 2, rtol=TOL)

    def test_pow(self):
        check_unary(lambda t: t ** 3)

    def test_neg(self):
        check_unary(lambda t: -t)

    def test_exp(self):
        check_unary(lambda t: t.exp())

    def test_log(self):
        check_unary(lambda t: t.log(), positive=True)

    def test_sqrt(self):
        check_unary(lambda t: t.sqrt(), positive=True)

    def test_tanh(self):
        check_unary(lambda t: t.tanh())

    def test_sigmoid(self):
        check_unary(lambda t: t.sigmoid())

    def test_relu(self):
        # Avoid kinks at zero for the finite-difference check.
        data = RNG.uniform(0.2, 2.0, size=(3, 4)) * RNG.choice([-1, 1], size=(3, 4))
        t = Tensor(data.copy(), requires_grad=True)
        t.relu().sum().backward()
        np.testing.assert_allclose(t.grad, (data > 0).astype(float))

    def test_abs(self):
        data = RNG.uniform(0.2, 2.0, size=(5,)) * RNG.choice([-1, 1], size=(5,))
        t = Tensor(data.copy(), requires_grad=True)
        t.abs().sum().backward()
        np.testing.assert_allclose(t.grad, np.sign(data))

    def test_clip(self):
        data = np.array([-2.0, -0.5, 0.5, 2.0])
        t = Tensor(data, requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 1.0, 0.0])


class TestMatmul:
    def test_2d(self):
        a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        num_a = numeric_grad(lambda arr: float((arr @ b.data).sum()), a.data.copy())
        num_b = numeric_grad(lambda arr: float((a.data @ arr).sum()), b.data.copy())
        np.testing.assert_allclose(a.grad, num_a, rtol=TOL, atol=TOL)
        np.testing.assert_allclose(b.grad, num_b, rtol=TOL, atol=TOL)

    def test_batched(self):
        a = Tensor(RNG.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(2, 4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        num_a = numeric_grad(lambda arr: float((arr @ b.data).sum()), a.data.copy())
        np.testing.assert_allclose(a.grad, num_a, rtol=TOL, atol=TOL)

    def test_broadcast_batched(self):
        a = Tensor(RNG.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        num_b = numeric_grad(lambda arr: float((a.data @ arr).sum()), b.data.copy())
        np.testing.assert_allclose(b.grad, num_b, rtol=TOL, atol=TOL)

    def test_vector_matrix(self):
        a = Tensor(RNG.normal(size=(4,)), requires_grad=True)
        b = Tensor(RNG.normal(size=(4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, b.data.sum(axis=1), rtol=TOL)

    def test_matrix_vector(self):
        a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(4,)), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(b.grad, a.data.sum(axis=0), rtol=TOL)


class TestReductions:
    def test_sum_axis(self):
        t = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        (t.sum(axis=0) * Tensor(np.arange(4.0))).sum().backward()
        np.testing.assert_allclose(t.grad, np.tile(np.arange(4.0), (3, 1)))

    def test_mean(self):
        t = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        t.mean().backward()
        np.testing.assert_allclose(t.grad, np.full((3, 4), 1 / 12))

    def test_mean_axis_keepdims(self):
        t = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        t.mean(axis=1, keepdims=True).sum().backward()
        np.testing.assert_allclose(t.grad, np.full((3, 4), 0.25))

    def test_max(self):
        data = np.array([[1.0, 5.0, 2.0], [7.0, 3.0, 4.0]])
        t = Tensor(data, requires_grad=True)
        t.max(axis=1).sum().backward()
        expected = np.array([[0, 1, 0], [1, 0, 0]], dtype=float)
        np.testing.assert_allclose(t.grad, expected)

    def test_var(self):
        data = RNG.normal(size=(4, 3))
        t = Tensor(data.copy(), requires_grad=True)
        t.var(axis=1).sum().backward()
        num = numeric_grad(lambda arr: float(arr.var(axis=1).sum()), data.copy())
        np.testing.assert_allclose(t.grad, num, rtol=1e-3, atol=1e-5)


class TestShapes:
    def test_reshape_transpose(self):
        t = Tensor(RNG.normal(size=(2, 6)), requires_grad=True)
        out = t.reshape(3, 4).transpose() * 2.0
        out.sum().backward()
        np.testing.assert_allclose(t.grad, np.full((2, 6), 2.0))

    def test_transpose_axes(self):
        t = Tensor(RNG.normal(size=(2, 3, 4)), requires_grad=True)
        scale = Tensor(RNG.normal(size=(4, 2, 3)))
        (t.transpose(2, 0, 1) * scale).sum().backward()
        np.testing.assert_allclose(t.grad, scale.data.transpose(1, 2, 0))

    def test_concat(self):
        a = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(RNG.normal(size=(2, 2)), requires_grad=True)
        out = Tensor.concat([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * 3.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 3.0))
        np.testing.assert_allclose(b.grad, np.full((2, 2), 3.0))

    def test_stack(self):
        tensors = [Tensor(RNG.normal(size=(3,)), requires_grad=True) for _ in range(4)]
        out = Tensor.stack(tensors, axis=0)
        assert out.shape == (4, 3)
        out.sum().backward()
        for t in tensors:
            np.testing.assert_allclose(t.grad, np.ones(3))

    def test_getitem_slice(self):
        t = Tensor(RNG.normal(size=(4, 5)), requires_grad=True)
        t[1:3, ::2].sum().backward()
        expected = np.zeros((4, 5))
        expected[1:3, ::2] = 1.0
        np.testing.assert_allclose(t.grad, expected)

    def test_getitem_fancy_accumulates(self):
        t = Tensor(RNG.normal(size=(3, 2)), requires_grad=True)
        idx = np.array([0, 0, 2])
        t[idx].sum().backward()
        np.testing.assert_allclose(t.grad, np.array([[2, 2], [0, 0], [1, 1]], float))

    def test_take_accumulates(self):
        t = Tensor(RNG.normal(size=(3, 2)), requires_grad=True)
        t.take(np.array([1, 1, 1]), axis=0).sum().backward()
        np.testing.assert_allclose(t.grad, np.array([[0, 0], [3, 3], [0, 0]], float))

    def test_masked_fill(self):
        t = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        mask = np.array([[True, False, False], [False, True, False]])
        out = t.masked_fill(mask, -99.0)
        assert out.data[0, 0] == -99.0
        out.sum().backward()
        np.testing.assert_allclose(t.grad, (~mask).astype(float))

    def test_where(self):
        a = Tensor(RNG.normal(size=(4,)), requires_grad=True)
        b = Tensor(RNG.normal(size=(4,)), requires_grad=True)
        cond = np.array([True, False, True, False])
        Tensor.where(cond, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, cond.astype(float))
        np.testing.assert_allclose(b.grad, (~cond).astype(float))


class TestGraphMechanics:
    def test_grad_accumulates_over_reuse(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        (t * t + t).backward()  # d/dt (t^2 + t) = 2t + 1 = 5
        np.testing.assert_allclose(t.grad, [5.0])

    def test_no_grad_context(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = t * 2.0
        assert not out.requires_grad

    def test_detach(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_backward_nonscalar_requires_grad_arg(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_deep_chain_no_recursion_error(self):
        t = Tensor(np.array([1.0]), requires_grad=True)
        out = t
        for _ in range(3000):
            out = out * 1.0001
        out.backward()
        assert t.grad is not None and np.isfinite(t.grad).all()

    def test_unbroadcast_shapes(self):
        grad = np.ones((2, 3, 4))
        assert _unbroadcast(grad, (3, 4)).shape == (3, 4)
        assert _unbroadcast(grad, (1, 4)).shape == (1, 4)
        assert _unbroadcast(grad, (2, 1, 1)).shape == (2, 1, 1)
