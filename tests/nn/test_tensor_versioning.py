"""Tests for Tensor storage version counters (sanitizer substrate).

PyTorch-style semantics: every in-place mutation bumps a counter shared
by all tensors aliasing the same storage (detached views, basic slices,
``narrow``), while true copies (``clone``, graph-node outputs) start a
fresh counter.
"""

import numpy as np
import pytest

from repro.nn import Adam, SGD, Tensor
from repro.nn.layers import Embedding
from repro.nn.module import Parameter
from repro.nn.rnn import narrow


class TestVersionBumps:
    def test_fresh_tensor_starts_at_zero(self):
        assert Tensor(np.ones(3)).version == 0

    def test_inplace_methods_bump(self):
        t = Tensor(np.ones(4))
        t.add_(1.0)
        t.sub_(0.5)
        t.mul_(2.0)
        t.fill_(3.0)
        t.zero_()
        t.copy_(np.arange(4.0))
        t.masked_fill_(np.array([True, False, True, False]), -1.0)
        assert t.version == 7
        np.testing.assert_allclose(t.data, [-1.0, 1.0, -1.0, 3.0])

    def test_data_setter_bumps(self):
        t = Tensor(np.ones(3))
        t.data = np.zeros(3)
        assert t.version == 1

    def test_augmented_assignment_on_data_bumps(self):
        # p.data -= update must count as a mutation (the optimizers'
        # in-place path goes through the property setter).
        t = Tensor(np.ones(3))
        t.data -= 0.5
        assert t.version == 1
        np.testing.assert_allclose(t.data, 0.5)

    def test_out_of_place_ops_do_not_bump(self):
        t = Tensor(np.ones(3), requires_grad=True)
        _ = (t + 1.0) * 2.0
        _ = t.sum()
        assert t.version == 0


class TestAliasing:
    def test_detach_shares_counter(self):
        t = Tensor(np.ones(3), requires_grad=True)
        view = t.detach()
        t.add_(1.0)
        assert view.version == 1
        view.mul_(2.0)
        assert t.version == 2

    def test_clone_gets_fresh_counter(self):
        t = Tensor(np.ones(3), requires_grad=True)
        c = t.clone()
        t.add_(1.0)
        assert c.version == 0
        assert not np.shares_memory(c.data, t.data)

    def test_clone_is_differentiable(self):
        t = Tensor(np.arange(3.0), requires_grad=True)
        (t.clone() * 2.0).sum().backward()
        np.testing.assert_allclose(t.grad, [2.0, 2.0, 2.0])

    def test_basic_getitem_shares_counter(self):
        t = Tensor(np.ones((4, 4)), requires_grad=True)
        row = t[1]
        t.fill_(0.0)
        assert row.version == 1

    def test_fancy_getitem_gets_fresh_counter(self):
        t = Tensor(np.ones((4, 4)), requires_grad=True)
        rows = t[np.array([0, 2])]
        t.fill_(0.0)
        assert rows.version == 0

    def test_narrow_shares_counter(self):
        t = Tensor(np.ones((3, 6)), requires_grad=True)
        cols = narrow(t, 1, 4)
        assert np.shares_memory(cols.data, t.data)
        t.add_(1.0)
        assert cols.version == 1


class TestFrameworkMutationsBump:
    def test_sgd_and_adam_step_bump_parameters(self):
        for optim_cls in (SGD, Adam):
            p = Parameter(np.ones(3))
            p.grad = np.ones(3)
            before = p.version
            optim_cls([p], lr=0.1).step()
            assert p.version == before + 1, optim_cls.__name__

    def test_embedding_padding_mask_bumps(self):
        emb = Embedding(5, 4, padding_idx=0, rng=np.random.default_rng(0))
        before = emb.weight.version
        emb.apply_padding_mask()
        assert emb.weight.version == before + 1

    def test_load_state_dict_bumps(self):
        emb = Embedding(5, 4, rng=np.random.default_rng(0))
        state = emb.state_dict()
        before = emb.weight.version
        emb.load_state_dict(state)
        assert emb.weight.version > before


class TestInplaceSemantics:
    def test_inplace_on_graph_output_keeps_buffer(self):
        t = Tensor(np.ones(3), requires_grad=True)
        out = t * 2.0
        buf = out.data
        out.add_(1.0)
        assert out.data is buf

    def test_masked_fill_requires_matching_mask(self):
        t = Tensor(np.ones(3))
        with pytest.raises((ValueError, IndexError)):
            t.masked_fill_(np.array([True, False]), 0.0)
