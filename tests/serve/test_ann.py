"""ANN retrieval: the clustered MIPS index vs the exact oracle.

Every property here is anchored to ``topk_from_scores``: full-probe
search must be *bitwise* identical to the exact top-k over unmasked
items, partitioned shards must merge back to the full-index answer,
and an ANN-serving ``RecommendService`` at ``nprobe >= num_clusters``
must reproduce the exact service's output byte for byte.
"""

import numpy as np
import pytest

from repro.analysis import PlanVerificationError, verify_plan
from repro.models import GRU4Rec, SASRec
from repro.serve import (RecommendService, attach_ann_index,
                         build_ann_index, freeze, merge_topk,
                         topk_from_scores)
from repro.serve.executors import NEG_INF

DIM = 16
MAX_LEN = 10
NUM_ITEMS = 40


def exact_reference(table, masked, reprs, k):
    """Exact oracle restricted to unmasked items, in global ids."""
    scores = reprs @ table.T
    scores[:, list(masked)] = NEG_INF
    return topk_from_scores(scores, k)


@pytest.fixture(scope="module")
def index_setup():
    rng = np.random.default_rng(7)
    table = rng.normal(size=(300, 12))
    # High-norm rows: the norm-augmentation must keep these findable.
    table[::17] *= 5.0
    masked = (0, 5)
    index = build_ann_index(table, masked_columns=masked, seed=3)
    queries = rng.normal(size=(20, 12))
    return table, masked, index, queries


class TestIndexBuild:
    def test_deterministic_across_builds(self, index_setup):
        table, masked, index, _ = index_setup
        again = build_ann_index(table, masked_columns=masked, seed=3)
        np.testing.assert_array_equal(index.centroids, again.centroids)
        np.testing.assert_array_equal(index.packed_ids, again.packed_ids)
        np.testing.assert_array_equal(index.offsets, again.offsets)
        np.testing.assert_array_equal(index.packed_table,
                                      again.packed_table)

    def test_each_unmasked_item_indexed_exactly_once(self, index_setup):
        table, masked, index, _ = index_setup
        expected = np.setdiff1d(np.arange(table.shape[0]),
                                np.asarray(masked))
        np.testing.assert_array_equal(np.sort(index.packed_ids), expected)
        assert index.size == expected.size
        assert int(index.offsets[-1]) == expected.size
        np.testing.assert_array_equal(index.cluster_sizes().sum(),
                                      expected.size)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="must be"):
            build_ann_index(np.zeros(4))
        with pytest.raises(ValueError, match="out of range"):
            build_ann_index(np.zeros((4, 2)), masked_columns=(9,))
        with pytest.raises(ValueError, match="no unmasked rows"):
            build_ann_index(np.zeros((2, 2)), masked_columns=(0, 1))


class TestSearch:
    def test_full_probe_matches_exact_oracle(self, index_setup):
        table, masked, index, queries = index_setup
        items, scores = index.search(queries, k=10,
                                     nprobe=index.num_clusters)
        expected = exact_reference(table, masked, queries, 10)
        # Item ids are bitwise-identical to the oracle; scores agree to
        # matmul rounding (per-cluster partial matmuls block the dot
        # products differently than one full-table matmul).
        np.testing.assert_array_equal(items, expected)
        exact_scores = np.take_along_axis(queries @ table.T, expected,
                                          axis=1)
        np.testing.assert_allclose(scores, exact_scores,
                                   rtol=1e-12, atol=1e-12)

    def test_masked_items_never_returned(self, index_setup):
        table, masked, index, queries = index_setup
        for nprobe in (1, 4, index.num_clusters):
            items, _ = index.search(queries, k=25, nprobe=nprobe)
            assert not np.isin(items, np.asarray(masked)).any()

    def test_short_rows_padded_with_sentinels(self, index_setup):
        _, _, index, queries = index_setup
        smallest = int(index.cluster_sizes().min())
        k = index.size  # k larger than any single cluster
        items, scores = index.search(queries, k=k, nprobe=1)
        assert (items >= 0).sum(axis=1).min() >= smallest
        assert ((items < 0).sum(axis=1) > 0).any()
        assert np.all(scores[items < 0] == NEG_INF)
        # Padding is right-aligned: once -1 starts, it never stops.
        for row in items:
            valid = row >= 0
            assert not np.any(valid[np.argmin(valid):]) or valid.all()

    def test_partitioned_shards_merge_to_full_answer(self, index_setup):
        _, _, index, queries = index_setup
        k, nprobe = 10, 4
        whole_items, whole_scores = index.search(queries, k, nprobe)
        shards = index.partition(3)
        assert sum(s.size for s in shards) == index.size
        # Probe each shard with its local nprobe share of the global
        # probe budget is not well-defined; instead compare against the
        # union semantics: full-probe every shard and merge.
        full_items, full_scores = index.search(
            queries, k, nprobe=index.num_clusters)
        for row in range(queries.shape[0]):
            item_lists, score_lists = [], []
            for shard in shards:
                ids, scs = shard.search_lists(queries[row:row + 1], k,
                                              nprobe=shard.num_clusters)
                item_lists.append(ids[0])
                score_lists.append(scs[0])
            merged_items, merged_scores = merge_topk(item_lists,
                                                     score_lists, k)
            np.testing.assert_array_equal(merged_items, full_items[row])
            np.testing.assert_allclose(merged_scores, full_scores[row],
                                       rtol=1e-12, atol=1e-12)
        assert whole_items.shape == (queries.shape[0], k)
        assert whole_scores.shape == (queries.shape[0], k)

    def test_recall_improves_with_nprobe(self, index_setup):
        table, masked, index, queries = index_setup
        exact = exact_reference(table, masked, queries, 10)
        from repro.eval import recall_against_oracle

        recalls = []
        for nprobe in (1, index.num_clusters // 2, index.num_clusters):
            items, _ = index.search(queries, 10, nprobe)
            recalls.append(recall_against_oracle(items, exact))
        assert recalls[0] <= recalls[1] <= recalls[2]
        assert recalls[-1] == 1.0

    def test_rejects_bad_queries(self, index_setup):
        _, _, index, queries = index_setup
        with pytest.raises(ValueError, match="k must be"):
            index.search(queries, 0, 1)
        with pytest.raises(ValueError, match="reprs must be"):
            index.search(queries[:, :5], 3, 1)


class TestPlanIntegration:
    @pytest.fixture(scope="class")
    def ann_plan(self):
        model = GRU4Rec(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                        rng=np.random.default_rng(0))
        return freeze(model, ann=True, ann_seed=5)

    def test_freeze_with_ann_verifies(self, ann_plan):
        assert ann_plan.ann_index is not None
        verify_plan(ann_plan)  # abstract-interprets the ANN pseudo-ops
        ops = [step["op"] for step in ann_plan.program()]
        assert ops[-3:] == ["centroid_scores", "probe_clusters",
                            "ann_gather_topk"]

    def test_ann_topk_full_probe_matches_exact(self, ann_plan):
        rng = np.random.default_rng(2)
        reprs = rng.normal(size=(6, DIM))
        items, scores = ann_plan.ann_topk(
            reprs, k=10, nprobe=ann_plan.ann_index.num_clusters)
        expected = topk_from_scores(ann_plan.score(reprs), 10)
        np.testing.assert_array_equal(items, expected)

    def test_plan_without_index_raises(self):
        model = GRU4Rec(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                        rng=np.random.default_rng(1))
        plan = freeze(model)
        with pytest.raises(ValueError, match="no ANN index"):
            plan.ann_topk(np.zeros((1, DIM)), k=5)

    def test_corrupted_index_fails_verification(self, ann_plan):
        import copy

        broken = copy.deepcopy(ann_plan)
        broken.ann_index.packed_ids = broken.ann_index.packed_ids[:-3]
        with pytest.raises(PlanVerificationError,
                           match="ann_gather_topk"):
            verify_plan(broken)

    def test_attach_rejects_fallback_plans(self):
        from repro.models import SRGNN
        model = SRGNN(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                      rng=np.random.default_rng(4))
        plan = freeze(model)
        with pytest.raises(ValueError, match="live model graph"):
            attach_ann_index(plan)


class TestServiceIntegration:
    @pytest.fixture(scope="class")
    def plans(self):
        model = SASRec(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                       rng=np.random.default_rng(6))
        return freeze(model)

    def test_full_probe_service_matches_exact(self, plans):
        rng = np.random.default_rng(8)
        requests = [(int(rng.integers(1, 50)),
                     list(rng.integers(1, NUM_ITEMS + 1,
                                       size=rng.integers(1, MAX_LEN))))
                    for _ in range(12)]
        attach_ann_index(plans)
        exact = RecommendService(plans, k=5, cache_size=0)
        ann = RecommendService(plans, k=5, cache_size=0, retrieval="ann",
                               nprobe=plans.ann_index.num_clusters)
        for req in requests:
            a, b = exact.recommend(*req), ann.recommend(*req)
            np.testing.assert_array_equal(a.items, b.items)
            np.testing.assert_allclose(np.asarray(b.scores),
                                       np.asarray(a.scores),
                                       rtol=1e-12, atol=1e-12)

    def test_low_nprobe_still_returns_k_items(self, plans):
        ann = RecommendService(plans, k=5, cache_size=0, retrieval="ann",
                               nprobe=1)
        rec = ann.recommend(1, [3, 7, 9])
        assert len(rec.items) <= 5
        assert all(int(i) > 0 for i in rec.items)

    def test_rejects_unknown_retrieval_mode(self, plans):
        with pytest.raises(ValueError, match="retrieval"):
            RecommendService(plans, k=5, retrieval="annoy")
