"""ClusterService: sharded routing, bitwise merge parity with the
single-process service, worker-kill recovery, and stats accounting."""

import numpy as np
import pytest

from repro.models import GRU4Rec, SASRec, SRGNN
from repro.resilience import SERVE_WORKER_SITE, Fault, FaultPlan
from repro.serve import (ClusterService, RecommendService, Router, freeze,
                         shard_of)
from repro.serve.router import Router as RouterDirect

DIM = 16
MAX_LEN = 10
NUM_ITEMS = 40


@pytest.fixture(scope="module")
def sasrec_plan():
    model = SASRec(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                   rng=np.random.default_rng(0))
    return freeze(model)


@pytest.fixture(scope="module")
def gru_plan():
    model = GRU4Rec(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                    rng=np.random.default_rng(1))
    return freeze(model)


def random_requests(rng, count, min_len=1, max_len=MAX_LEN):
    return [(int(rng.integers(1, 100)),
             tuple(int(x) for x in
                   rng.integers(1, NUM_ITEMS + 1,
                                size=rng.integers(min_len, max_len + 1))))
            for _ in range(count)]


class TestRouter:
    def test_shard_is_deterministic_and_in_range(self):
        for user in (0, 1, 17, 2**40, -3):
            first = shard_of(user, (1, 2), 4)
            assert first == shard_of(user, (9, 9, 9), 4)  # user key only
            assert 0 <= first < 4

    def test_anonymous_requests_route_by_sequence(self):
        a = shard_of(None, (1, 2, 3), 8)
        b = shard_of(None, (1, 2, 3), 8)
        assert a == b
        assert 0 <= a < 8

    def test_partition_preserves_arrival_order(self):
        rng = np.random.default_rng(2)
        requests = random_requests(rng, 50)
        groups = Router(4).partition(requests)
        covered = sorted(i for idx in groups.values() for i in idx)
        assert covered == list(range(len(requests)))
        for shard, indices in groups.items():
            assert indices == sorted(indices)          # arrival order
            for i in indices:
                assert shard_of(requests[i][0], requests[i][1], 4) == shard

    def test_scatter_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            RouterDirect.scatter([None] * 3, [0, 1], ["only-one"])

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            Router(0)
        with pytest.raises(ValueError):
            shard_of(1, (2,), 0)


class TestClusterParity:
    def test_bitwise_identical_to_single_service_per_shard(self,
                                                           sasrec_plan):
        """The acceptance bar: for the same per-shard micro-batches the
        cluster is bitwise transparent — IPC serialization and the
        arrival-order merge change nothing, ties included."""
        rng = np.random.default_rng(3)
        requests = random_requests(rng, 48)
        with ClusterService(sasrec_plan, num_workers=4, k=5,
                            cache_size=0) as cluster:
            actual = cluster.recommend_many(requests)

        router = Router(4)
        groups = router.partition(requests)
        reference = [None] * len(requests)
        service = RecommendService(sasrec_plan, k=5, cache_size=0)
        for shard in sorted(groups):
            indices = groups[shard]
            Router.scatter(reference, indices,
                           service.recommend_many([requests[i]
                                                   for i in indices]))
        for got, want in zip(actual, reference):
            assert not got.failed
            assert got.user == want.user
            np.testing.assert_array_equal(got.items, want.items)
            assert got.scores.tobytes() == want.scores.tobytes()

    def test_full_stream_matches_unsharded_service(self, sasrec_plan):
        """Against a plain unsharded service the batch compositions
        differ, so scores are compared to BLAS reduction tolerance."""
        rng = np.random.default_rng(4)
        requests = random_requests(rng, 24)
        with ClusterService(sasrec_plan, num_workers=2, k=5,
                            cache_size=0) as cluster:
            actual = cluster.recommend_many(requests)
        single = RecommendService(sasrec_plan, k=5, cache_size=0)
        for req, got in zip(requests, actual):
            want = single.recommend(*req)
            np.testing.assert_array_equal(got.items, want.items)
            np.testing.assert_allclose(got.scores, want.scores, atol=1e-9)

    def test_ann_cluster_matches_single_ann_service(self, sasrec_plan):
        """ANN retrieval rides the spool: the index is built once before
        spooling, so every worker probes identical clusters and the
        sharded stream reproduces the single-process ANN service."""
        from repro.serve import attach_ann_index

        attach_ann_index(sasrec_plan)
        nprobe = sasrec_plan.ann_index.num_clusters
        rng = np.random.default_rng(11)
        requests = random_requests(rng, 16)
        with ClusterService(sasrec_plan, num_workers=2, k=5,
                            cache_size=0, retrieval="ann",
                            nprobe=nprobe) as cluster:
            actual = cluster.recommend_many(requests)
        single = RecommendService(sasrec_plan, k=5, cache_size=0,
                                  retrieval="ann", nprobe=nprobe)
        for req, got in zip(requests, actual):
            want = single.recommend(*req)
            np.testing.assert_array_equal(got.items, want.items)
            np.testing.assert_allclose(got.scores, want.scores, atol=1e-9)

    def test_quantized_spool_round_trips_through_workers(self,
                                                         sasrec_plan):
        """``quantize_spool="fp16"`` ships a compact plan; workers
        dequantize + re-verify on load and still answer every request
        (fp16 noise is far below the top-5 separation at this scale)."""
        requests = random_requests(np.random.default_rng(12), 8)
        with ClusterService(sasrec_plan, num_workers=2, k=5,
                            cache_size=0,
                            quantize_spool="fp16") as cluster:
            results = cluster.recommend_many(requests)
        assert [r.user for r in results] == [u for u, _ in requests]
        assert all(len(r.items) == 5 for r in results)

    def test_single_worker_cluster_degenerates_cleanly(self, sasrec_plan):
        requests = random_requests(np.random.default_rng(5), 8)
        with ClusterService(sasrec_plan, num_workers=1, k=5,
                            cache_size=0) as cluster:
            results = cluster.recommend_many(requests)
        assert [r.user for r in results] == [u for u, _ in requests]

    def test_shard_cache_and_incremental_survive_flushes(self, gru_plan):
        """A user's LRU entry and GRU hidden state live on one worker:
        an exact repeat is a cache hit there, an append is incremental,
        and the front-end surfaces both flags."""
        with ClusterService(gru_plan, num_workers=2, k=5,
                            padding="tight") as cluster:
            first = cluster.recommend(7, (3, 1, 4))
            repeat = cluster.recommend(7, (3, 1, 4))
            extended = cluster.recommend(7, (3, 1, 4, 2))
            assert not first.from_cache
            assert repeat.from_cache
            assert extended.incremental
            per_worker = cluster.worker_stats()
            assert sum(s["cache_hits"] for s in per_worker.values()) == 1
            assert sum(s["incremental_hits"]
                       for s in per_worker.values()) == 1


class TestValidation:
    def test_rejects_fallback_plan(self):
        model = SRGNN(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                      rng=np.random.default_rng(6))
        with pytest.raises(ValueError, match="fallback"):
            ClusterService(model, num_workers=2)

    def test_rejects_bad_parameters(self, sasrec_plan):
        with pytest.raises(ValueError):
            ClusterService(sasrec_plan, num_workers=0)
        with pytest.raises(ValueError):
            ClusterService(sasrec_plan, k=0)
        with pytest.raises(ValueError):
            ClusterService(sasrec_plan, padding="sideways")
        from repro.models import Caser
        caser = Caser(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                      rng=np.random.default_rng(9))
        with pytest.raises(ValueError):
            ClusterService(caser, padding="tight")  # width-sensitive

    def test_rejects_empty_sequence(self, sasrec_plan):
        with ClusterService(sasrec_plan, num_workers=2) as cluster:
            with pytest.raises(ValueError):
                cluster.enqueue(1, [])

    def test_flush_after_close_raises(self, sasrec_plan):
        cluster = ClusterService(sasrec_plan, num_workers=1)
        cluster.close()
        cluster.close()                                 # idempotent
        with pytest.raises(RuntimeError):
            cluster.flush()


class TestChaos:
    def test_hard_killed_worker_is_revived_and_batch_rerouted(
            self, sasrec_plan):
        rng = np.random.default_rng(7)
        requests = random_requests(rng, 120)
        kill = FaultPlan([Fault(site=SERVE_WORKER_SITE, action="kill",
                                hit=2, hard=True)])
        with ClusterService(sasrec_plan, num_workers=2, k=5,
                            worker_fault_plans={0: kill.to_json()}
                            ) as cluster:
            answered = []
            for at in range(0, len(requests), 30):
                answered.extend(cluster.recommend_many(
                    requests[at:at + 30]))
            assert len(answered) == len(requests)       # zero dropped
            assert not any(r.failed for r in answered)
            assert cluster.stats.worker_restarts == 1
            assert cluster.stats.rerouted_requests > 0
            # The respawned worker keeps serving correct results.
            reference = RecommendService(sasrec_plan, k=5, cache_size=0)
            probe = requests[0]
            np.testing.assert_array_equal(
                cluster.recommend(*probe).items,
                reference.recommend(*probe).items)

    def test_worker_exception_surfaces_as_error_results(self,
                                                        sasrec_plan):
        rng = np.random.default_rng(8)
        requests = random_requests(rng, 40)
        boom = FaultPlan([Fault(site=SERVE_WORKER_SITE, action="raise",
                                count=1000)])
        with ClusterService(sasrec_plan, num_workers=2, k=5,
                            worker_fault_plans={1: boom.to_json()}
                            ) as cluster:
            results = cluster.recommend_many(requests)
            assert len(results) == len(requests)
            failed = [r for r in results if r.failed]
            healthy = [r for r in results if not r.failed]
            assert failed and healthy                   # shard isolation
            assert all(r.error.startswith("shard worker:")
                       for r in failed)
            assert cluster.stats.errors == len(failed)
            assert cluster.stats.worker_restarts == 0   # it never died

    def test_kill_worker_helper_triggers_revival(self, sasrec_plan):
        requests = random_requests(np.random.default_rng(9), 20)
        with ClusterService(sasrec_plan, num_workers=2, k=5) as cluster:
            cluster.recommend_many(requests[:10])
            cluster.kill_worker(0)
            results = cluster.recommend_many(requests[10:])
            assert len(results) == 10
            assert not any(r.failed for r in results)
            assert cluster.stats.worker_restarts >= 1


class TestStats:
    def test_front_end_accounting(self, sasrec_plan):
        rng = np.random.default_rng(10)
        requests = random_requests(rng, 30)
        with ClusterService(sasrec_plan, num_workers=4, k=5) as cluster:
            cluster.recommend_many(requests[:20])
            cluster.recommend_many(requests[20:])
            stats = cluster.stats
            assert stats.requests == 30
            assert stats.flushes == 2
            assert sum(stats.shard_requests.values()) == 30
            assert stats.dispatches >= len(stats.shard_requests)
            payload = stats.as_dict()
            assert payload["requests"] == 30
            per_worker = cluster.worker_stats()
            assert set(per_worker) == {0, 1, 2, 3}
            served = sum(s["requests"] for s in per_worker.values()
                         if s is not None)
            assert served == 30


class TestPlanHotSwap:
    """Two-phase swap protocol: prepare/commit over the versioned spool,
    chaos-tested at every swap fault site (satellite of the online
    learning PR)."""

    @pytest.fixture(scope="class")
    def new_plan(self):
        model = SASRec(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                       rng=np.random.default_rng(11))
        return freeze(model)

    @staticmethod
    def _shard_reference(plan, requests, num_workers, k=5):
        """Cold single-process service fed the same per-shard batches."""
        groups = Router(num_workers).partition(requests)
        reference = [None] * len(requests)
        service = RecommendService(plan, k=k, cache_size=0)
        for shard in sorted(groups):
            indices = groups[shard]
            Router.scatter(reference, indices,
                           service.recommend_many([requests[i]
                                                   for i in indices]))
        return reference

    def test_swap_bitwise_parity_with_cold_service(self, sasrec_plan,
                                                   new_plan):
        requests = random_requests(np.random.default_rng(12), 16)
        with ClusterService(sasrec_plan, num_workers=2, k=5,
                            cache_size=0) as cluster:
            cluster.recommend_many(requests)
            version = cluster.swap_plan(new_plan)
            assert version == 1
            assert cluster.stats.plan_swaps == 1
            got = cluster.recommend_many(requests)
            want = self._shard_reference(new_plan, requests, 2)
            for g, w in zip(got, want):
                assert not g.failed
                np.testing.assert_array_equal(g.items, w.items)
                assert g.scores.tobytes() == w.scores.tobytes()

    def test_corrupt_spool_aborts_and_keeps_old_plan(self, sasrec_plan,
                                                     new_plan):
        from repro.resilience import active_plan
        from repro.serve import PlanSwapError
        requests = random_requests(np.random.default_rng(13), 12)
        with ClusterService(sasrec_plan, num_workers=2, k=5,
                            cache_size=0) as cluster:
            FaultPlan([Fault(site="serve.swap.spool",
                             action="corrupt")]).arm()
            try:
                with pytest.raises(PlanSwapError):
                    cluster.swap_plan(new_plan)
            finally:
                armed = active_plan()
                if armed is not None:
                    armed.disarm()
            assert cluster.stats.plan_swaps == 0
            got = cluster.recommend_many(requests)
            want = self._shard_reference(sasrec_plan, requests, 2)
            for g, w in zip(got, want):
                assert not g.failed
                assert g.scores.tobytes() == w.scores.tobytes()

    def test_worker_killed_at_prepare_is_revived_and_swap_lands(
            self, sasrec_plan, new_plan):
        from repro.resilience import SWAP_PREPARE_SITE
        kill = FaultPlan([Fault(site=SWAP_PREPARE_SITE, action="kill",
                                hard=True)])
        requests = random_requests(np.random.default_rng(14), 12)
        with ClusterService(sasrec_plan, num_workers=2, k=5, cache_size=0,
                            worker_fault_plans={0: kill.to_json()}
                            ) as cluster:
            cluster.recommend_many(requests)
            assert cluster.swap_plan(new_plan) == 1
            assert cluster.stats.worker_restarts == 1
            got = cluster.recommend_many(requests)
            want = self._shard_reference(new_plan, requests, 2)
            for g, w in zip(got, want):
                assert not g.failed
                assert g.scores.tobytes() == w.scores.tobytes()

    def test_worker_killed_at_commit_converges_on_new_plan(
            self, sasrec_plan, new_plan):
        from repro.resilience import SWAP_COMMIT_SITE
        kill = FaultPlan([Fault(site=SWAP_COMMIT_SITE, action="kill",
                                hard=True)])
        requests = random_requests(np.random.default_rng(15), 12)
        with ClusterService(sasrec_plan, num_workers=2, k=5, cache_size=0,
                            worker_fault_plans={1: kill.to_json()}
                            ) as cluster:
            cluster.recommend_many(requests)
            assert cluster.swap_plan(new_plan) == 1
            assert cluster.stats.worker_restarts == 1
            got = cluster.recommend_many(requests)
            want = self._shard_reference(new_plan, requests, 2)
            for g, w in zip(got, want):
                assert not g.failed
                assert g.scores.tobytes() == w.scores.tobytes()

    def test_swap_rejects_incompatible_plan(self, sasrec_plan):
        srgnn = SRGNN(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                      rng=np.random.default_rng(16))
        with ClusterService(sasrec_plan, num_workers=1, k=5) as cluster:
            with pytest.raises(ValueError, match="fallback"):
                cluster.swap_plan(srgnn)
            assert cluster.stats.plan_swaps == 0
            assert not cluster.recommend(1, [2, 3]).failed
