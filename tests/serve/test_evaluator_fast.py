"""Evaluator(fast=True) must rank identically to the graph path."""

import numpy as np
import pytest

from repro.core import SSDRec, SSDRecConfig
from repro.data import generate, leave_one_out_split
from repro.eval import Evaluator
from repro.models import GRU4Rec, SASRec, SRGNN


@pytest.fixture(scope="module")
def prepared():
    dataset = generate("beauty", seed=0, scale=0.25)
    split = leave_one_out_split(dataset, max_len=8)
    return dataset, split


def fast_and_graph_ranks(model, split, **kwargs):
    evaluator = Evaluator(split.test, batch_size=32, max_len=split.max_len,
                          **kwargs)
    evaluator.fast = False
    graph = evaluator.ranks(model)
    evaluator.fast = True
    frozen = evaluator.ranks(model)
    return graph, frozen


@pytest.mark.parametrize("cls", [SASRec, GRU4Rec])
def test_backbone_fast_ranks_identical(prepared, cls):
    dataset, split = prepared
    model = cls(num_items=dataset.num_items, dim=16, max_len=split.max_len,
                rng=np.random.default_rng(0))
    graph, frozen = fast_and_graph_ranks(model, split)
    np.testing.assert_array_equal(graph, frozen)


def test_ssdrec_fast_ranks_identical(prepared):
    dataset, split = prepared
    model = SSDRec(dataset, backbone_cls=GRU4Rec,
                   config=SSDRecConfig(dim=16, max_len=split.max_len),
                   rng=np.random.default_rng(1))
    graph, frozen = fast_and_graph_ranks(model, split)
    np.testing.assert_array_equal(graph, frozen)


def test_fallback_fast_ranks_identical(prepared):
    dataset, split = prepared
    model = SRGNN(num_items=dataset.num_items, dim=16,
                  max_len=split.max_len, rng=np.random.default_rng(2))
    graph, frozen = fast_and_graph_ranks(model, split)
    np.testing.assert_array_equal(graph, frozen)


def test_fast_restores_training_mode(prepared):
    dataset, split = prepared
    model = SASRec(num_items=dataset.num_items, dim=16,
                   max_len=split.max_len, rng=np.random.default_rng(3))
    model.train()
    Evaluator(split.test, max_len=split.max_len, fast=True).ranks(model)
    assert model.training


def test_chunked_ranks_identical(prepared):
    """score_chunk must not change ranks — only peak memory."""
    dataset, split = prepared
    model = SASRec(num_items=dataset.num_items, dim=16,
                   max_len=split.max_len, rng=np.random.default_rng(4))
    whole = Evaluator(split.test, max_len=split.max_len,
                      score_chunk=None).ranks(model)
    for chunk in (1, 3, 7, 10_000):
        chunked = Evaluator(split.test, max_len=split.max_len,
                            score_chunk=chunk).ranks(model)
        np.testing.assert_array_equal(whole, chunked)
    fast_whole = Evaluator(split.test, max_len=split.max_len, fast=True,
                           score_chunk=None).ranks(model)
    fast_chunked = Evaluator(split.test, max_len=split.max_len, fast=True,
                             score_chunk=5).ranks(model)
    np.testing.assert_array_equal(fast_whole, fast_chunked)


def test_invalid_score_chunk_rejected(prepared):
    _, split = prepared
    with pytest.raises(ValueError):
        Evaluator(split.test, max_len=split.max_len, score_chunk=0)
