"""Frozen-plan vs training-graph forward parity (<= 1e-6, every model)."""

import numpy as np
import pytest

from repro.core import SSDRec, SSDRecConfig
from repro.data import generate
from repro.data.batching import pad_sequences
from repro.models import BACKBONES, GRU4Rec, SASRec, SRGNN
from repro.nn import no_grad
from repro.serve import FallbackPlan, freeze

DIM = 16
MAX_LEN = 12
NUM_ITEMS = 60
TOL = 1e-6


def random_batch(rng, rows=7, num_items=NUM_ITEMS, max_len=MAX_LEN):
    seqs = [list(rng.integers(1, num_items + 1,
                              size=rng.integers(1, max_len + 1)))
            for _ in range(rows)]
    items, mask, _ = pad_sequences(seqs, max_len=max_len)
    return items, mask


def assert_forward_parity(model, items, mask, users=None):
    plan = freeze(model)
    model.eval()
    with no_grad():
        if users is not None:
            graph = model.forward(items, mask, users=users).data
        else:
            graph = model.forward(items, mask).data
    frozen = (plan.forward(items, mask, users) if users is not None
              else plan.forward(items, mask))
    np.testing.assert_allclose(frozen, graph, atol=TOL, rtol=0)


@pytest.mark.parametrize("name", sorted(BACKBONES))
def test_backbone_parity(name):
    rng = np.random.default_rng(3)
    model = BACKBONES[name](num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                            rng=rng)
    items, mask = random_batch(np.random.default_rng(11))
    plan = freeze(model)
    assert not isinstance(plan, FallbackPlan), name
    assert_forward_parity(model, items, mask)


def test_unregistered_model_gets_fallback_and_matches():
    model = SRGNN(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                  rng=np.random.default_rng(5))
    plan = freeze(model)
    assert isinstance(plan, FallbackPlan)
    items, mask = random_batch(np.random.default_rng(13))
    assert_forward_parity(model, items, mask)


def test_subclass_of_registered_model_falls_back():
    class TweakedSASRec(SASRec):
        pass

    model = TweakedSASRec(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                          rng=np.random.default_rng(0))
    assert isinstance(freeze(model), FallbackPlan)


class TestSSDRecParity:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate("beauty", seed=0, scale=0.25)

    def _batch(self, dataset, rng):
        users = rng.integers(1, dataset.num_users, size=6)
        seqs = [dataset.sequences[u][:MAX_LEN] or [1] for u in users]
        items, mask, _ = pad_sequences(seqs, max_len=MAX_LEN)
        return items, mask, np.asarray(users)

    @pytest.mark.parametrize("backbone", ["GRU4Rec", "SASRec"])
    def test_full_pipeline(self, dataset, backbone):
        model = SSDRec(dataset, backbone_cls=BACKBONES[backbone],
                       config=SSDRecConfig(dim=DIM, max_len=MAX_LEN),
                       rng=np.random.default_rng(1))
        items, mask, users = self._batch(dataset, np.random.default_rng(2))
        assert_forward_parity(model, items, mask, users)

    @pytest.mark.parametrize("kwargs", [
        dict(use_stage1=False),
        dict(use_stage3=False),
        dict(use_stage1=False, use_stage3=False),
        dict(denoise_rounds=0),
    ])
    def test_ablated_variants(self, dataset, kwargs):
        model = SSDRec(dataset, backbone_cls=GRU4Rec,
                       config=SSDRecConfig(dim=DIM, max_len=MAX_LEN,
                                           **kwargs),
                       rng=np.random.default_rng(4))
        items, mask, users = self._batch(dataset, np.random.default_rng(6))
        assert_forward_parity(model, items, mask, users)

    def test_without_users(self, dataset):
        model = SSDRec(dataset, backbone_cls=GRU4Rec,
                       config=SSDRecConfig(dim=DIM, max_len=MAX_LEN),
                       rng=np.random.default_rng(7))
        items, mask, _ = self._batch(dataset, np.random.default_rng(8))
        assert_forward_parity(model, items, mask)

    def test_non_hsd_gate_falls_back(self, dataset):
        model = SSDRec(dataset, backbone_cls=GRU4Rec,
                       config=SSDRecConfig(dim=DIM, max_len=MAX_LEN,
                                           denoise_gate="sparse-attention"),
                       rng=np.random.default_rng(9))
        plan = freeze(model)
        assert isinstance(plan, FallbackPlan)
        items, mask, users = self._batch(dataset, np.random.default_rng(10))
        assert_forward_parity(model, items, mask, users)
