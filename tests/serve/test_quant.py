"""int8/fp16 FrozenPlan quantization: round-trip metadata + error
bounds over every weight record, and corruption detection through
``PlanVerificationError`` naming the offending weight path."""

import numpy as np
import pytest

from repro.analysis import PlanVerificationError
from repro.core import SSDRec, SSDRecConfig
from repro.data import generate
from repro.models import BACKBONES, GRU4Rec, SRGNN
from repro.serve import (QuantizedArray, dequantize_array, freeze,
                         max_abs_error, quantize_array, quantize_plan)

DIM = 16
MAX_LEN = 10
NUM_ITEMS = 40


def gru_plan(ann=False):
    model = GRU4Rec(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                    rng=np.random.default_rng(0))
    return freeze(model, ann=ann)


class TestArrayRoundTrip:
    @pytest.mark.parametrize("mode", ["int8", "fp16"])
    @pytest.mark.parametrize("shape", [(7,), (5, 9), (3, 4, 6)])
    def test_metadata_and_error_bound(self, mode, shape):
        rng = np.random.default_rng(1)
        arr = rng.normal(size=shape) * rng.uniform(0.01, 10.0)
        qa = quantize_array(arr, mode)
        decoded = dequantize_array(qa, path="w", plan="P")
        assert decoded.shape == arr.shape
        assert decoded.dtype == arr.dtype
        assert qa.shape == arr.shape
        assert qa.dtype == str(arr.dtype)
        assert np.abs(decoded - arr).max() <= max_abs_error(qa)
        assert qa.nbytes < arr.nbytes

    def test_zero_rows_survive_int8(self):
        arr = np.zeros((3, 4))
        decoded = dequantize_array(quantize_array(arr, "int8"))
        np.testing.assert_array_equal(decoded, arr)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="unknown quantization"):
            quantize_array(np.zeros(3), "int4")
        with pytest.raises(ValueError, match="float arrays"):
            quantize_array(np.zeros(3, dtype=np.int64), "int8")


class TestPlanRoundTrip:
    @pytest.mark.parametrize("mode", ["int8", "fp16"])
    def test_every_weight_descriptor_round_trips(self, mode):
        plan = gru_plan()
        quantized = quantize_plan(plan, mode)
        weights = quantized.weights()
        assert weights, "no weight records found"
        assert any("item_table" in path for path in weights)
        restored = quantized.dequantize(verify=True)
        for path, qa in weights.items():
            assert qa.mode == mode
            decoded = dequantize_array(qa, path=path)
            assert decoded.shape == qa.shape
            assert str(decoded.dtype) == qa.dtype
            roundtrip = dequantize_array(quantize_array(decoded, mode),
                                         path=path)
            assert np.abs(roundtrip - decoded).max() <= max_abs_error(qa)
        assert quantized.nbytes() < plan.item_table.nbytes * \
            (1 if mode == "int8" else 4)
        # The restored plan serves: table_t was rebuilt contiguous.
        assert restored.table_t.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(restored.table_t,
                                      restored.item_table.T)

    @pytest.mark.parametrize("mode,tol_scale", [("int8", 1.0),
                                                ("fp16", 1.0)])
    def test_dequantized_scores_within_documented_bound(self, mode,
                                                        tol_scale):
        plan = gru_plan()
        restored = quantize_plan(plan, mode).dequantize()
        rng = np.random.default_rng(3)
        from repro.data.batching import pad_sequences
        seqs = [list(rng.integers(1, NUM_ITEMS + 1, size=5))
                for _ in range(4)]
        items, mask, _ = pad_sequences(seqs, max_len=MAX_LEN)
        exact = plan.forward(items, mask)
        approx = restored.forward(items, mask)
        # Loose end-to-end sanity: quantization noise stays small
        # relative to the score range.
        spread = float(exact.max() - exact.min()) or 1.0
        assert np.abs(approx - exact).max() / spread < 0.1 * tol_scale

    def test_ssdrec_nested_plan_round_trips_with_ann(self):
        dataset = generate("beauty", seed=0, scale=0.25)
        model = SSDRec(dataset, backbone_cls=BACKBONES["GRU4Rec"],
                       config=SSDRecConfig(dim=DIM, max_len=MAX_LEN),
                       rng=np.random.default_rng(2))
        plan = freeze(model, ann=True)
        spec = plan.ann_index.spec()
        quantized = quantize_plan(plan, "int8")
        # The live index never rides the quantized payload — only its
        # build spec does.
        assert quantized.ann_spec == spec
        assert not any("ann_index" in p and "packed" in p
                       for p in quantized.weights())
        restored = quantized.dequantize(verify=True)
        assert restored.ann_index is not None
        assert restored.ann_index.spec() == spec
        # Backbone weights were quantized too (nested plan object).
        assert any("backbone_plan" in p for p in quantized.weights())

    def test_rejects_fallback_plans(self):
        model = SRGNN(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                      rng=np.random.default_rng(4))
        with pytest.raises(ValueError, match="fallback"):
            quantize_plan(freeze(model), "int8")

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown quantization"):
            quantize_plan(gru_plan(), "int3")


class TestCorruptionDetection:
    def find_record(self, quantized, fragment):
        for path, qa in quantized.weights().items():
            if fragment in path:
                return path, qa
        raise AssertionError(f"no record matching {fragment!r}")

    def test_corrupted_scale_shape_names_the_weight(self):
        quantized = quantize_plan(gru_plan(), "int8")
        path, qa = self.find_record(quantized, "item_table")
        qa.scale = qa.scale[:-3]
        with pytest.raises(PlanVerificationError) as err:
            quantized.dequantize()
        assert path in str(err.value)
        assert "scale vector shape" in str(err.value)

    def test_non_finite_scale_detected(self):
        quantized = quantize_plan(gru_plan(), "int8")
        path, qa = self.find_record(quantized, "item_table")
        qa.scale[0, 0] = np.nan
        with pytest.raises(PlanVerificationError,
                           match="non-finite or non-positive"):
            quantized.dequantize()

    def test_truncated_codes_detected(self):
        quantized = quantize_plan(gru_plan(), "int8")
        path, qa = self.find_record(quantized, "item_table")
        qa.data = qa.data.reshape(-1)[:-5]
        with pytest.raises(PlanVerificationError) as err:
            quantized.dequantize()
        assert path in str(err.value)
        assert "recorded shape" in str(err.value)

    def test_wrong_code_dtype_detected(self):
        qa = quantize_array(np.ones((2, 3)), "int8")
        qa.data = qa.data.astype(np.int16)
        with pytest.raises(PlanVerificationError, match="int16"):
            dequantize_array(qa, path="w")

    def test_missing_scale_detected(self):
        qa = quantize_array(np.ones((2, 3)), "int8")
        qa.scale = None
        with pytest.raises(PlanVerificationError, match="missing"):
            dequantize_array(qa, path="w")

    def test_unknown_mode_detected(self):
        qa = QuantizedArray("int5", (2,), "float64",
                            np.zeros(2, dtype=np.int8),
                            np.ones((1, 1)))
        with pytest.raises(PlanVerificationError, match="int5"):
            dequantize_array(qa, path="w")
