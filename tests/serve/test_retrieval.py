"""``topk_from_scores`` vs full sort, including adversarial tie layouts,
and ``merge_topk``: shard-merged top-K must be bitwise-identical to a
single global ``topk_from_scores`` pass."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import merge_topk, topk_from_scores


def full_sort_topk(scores, k):
    """Reference: full (-score, index) sort, first k columns."""
    order = np.lexsort((np.broadcast_to(np.arange(scores.shape[1]),
                                        scores.shape), -scores), axis=1)
    return order[:, :k]


class TestTopK:
    def test_simple(self):
        scores = np.array([[0.1, 0.9, 0.5, 0.3]])
        np.testing.assert_array_equal(topk_from_scores(scores, 2), [[1, 2]])

    def test_one_dimensional_input(self):
        top = topk_from_scores(np.array([3.0, 1.0, 2.0]), 2)
        np.testing.assert_array_equal(top, [0, 2])

    def test_k_clamped_to_vocab(self):
        scores = np.array([[2.0, 1.0, 3.0]])
        np.testing.assert_array_equal(topk_from_scores(scores, 10),
                                      [[2, 0, 1]])

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            topk_from_scores(np.zeros((2, 3)), 0)
        with pytest.raises(ValueError):
            topk_from_scores(np.zeros((2, 3, 4)), 1)

    def test_ties_prefer_lowest_index(self):
        scores = np.array([[1.0, 2.0, 2.0, 2.0, 0.5]])
        # Three-way tie at the top: ids 1, 2, 3 in ascending order.
        np.testing.assert_array_equal(topk_from_scores(scores, 2), [[1, 2]])

    def test_boundary_tie_group_larger_than_k(self):
        # Every entry tied: top-k must be exactly the first k indices,
        # whatever subset argpartition happened to select.
        scores = np.full((4, 9), 7.0)
        np.testing.assert_array_equal(
            topk_from_scores(scores, 3),
            np.tile(np.arange(3), (4, 1)))

    def test_constant_rows_mixed_with_distinct_rows(self):
        scores = np.array([[5.0, 5.0, 5.0, 5.0],
                           [1.0, 4.0, 3.0, 2.0]])
        np.testing.assert_array_equal(topk_from_scores(scores, 2),
                                      [[0, 1], [1, 2]])

    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 40), st.integers(1, 8), st.integers(0, 10**6),
           st.integers(1, 5))
    def test_matches_full_sort_with_heavy_ties(self, vocab, rows, seed,
                                               levels):
        rng = np.random.default_rng(seed)
        # Few distinct levels => many exact ties, the adversarial case.
        scores = rng.integers(0, levels, size=(rows, vocab)).astype(float)
        k = int(rng.integers(1, vocab + 1))
        np.testing.assert_array_equal(topk_from_scores(scores, k),
                                      full_sort_topk(scores, k))

    def test_merge_simple(self):
        items, scores = merge_topk([[0, 2], [5, 3]],
                                   [[9.0, 1.0], [8.0, 7.0]], k=3)
        np.testing.assert_array_equal(items, [0, 5, 3])
        np.testing.assert_array_equal(scores, [9.0, 8.0, 7.0])

    def test_merge_ties_prefer_lowest_global_id(self):
        # Shards arrive out of id order; the tie at 2.0 must still
        # resolve to ascending global item id, exactly like
        # topk_from_scores over the concatenated catalog.
        items, scores = merge_topk([[7, 9], [1, 4]],
                                   [[2.0, 2.0], [2.0, 2.0]], k=3)
        np.testing.assert_array_equal(items, [1, 4, 7])
        np.testing.assert_array_equal(scores, [2.0, 2.0, 2.0])

    def test_merge_clamps_k_to_candidates(self):
        items, _ = merge_topk([[3], [8]], [[1.0], [2.0]], k=10)
        np.testing.assert_array_equal(items, [8, 3])

    def test_merge_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            merge_topk([[1]], [[1.0]], k=0)
        with pytest.raises(ValueError):
            merge_topk([[1], [2]], [[1.0]], k=1)
        with pytest.raises(ValueError):
            merge_topk([[1, 2]], [[1.0]], k=1)

    @settings(max_examples=80, deadline=None)
    @given(st.integers(2, 60), st.integers(1, 6), st.integers(0, 10**6),
           st.integers(1, 4))
    def test_shard_merge_bitwise_identical_to_global_topk(
            self, vocab, shards, seed, levels):
        """The cluster-merge contract: partition the catalog into
        contiguous shards, take each shard's local top-k, and merge —
        the result must be *bitwise* identical (items and score bytes)
        to one global ``topk_from_scores`` pass.  Few distinct score
        levels force heavy ties across shard boundaries, the case where
        any deviation from the (-score, index) total order shows up."""
        rng = np.random.default_rng(seed)
        scores = rng.integers(0, levels, size=vocab).astype(float)
        k = int(rng.integers(1, vocab + 1))
        bounds = np.sort(rng.integers(0, vocab + 1, size=shards - 1)) \
            if shards > 1 else np.empty(0, dtype=int)
        edges = [0, *bounds.tolist(), vocab]
        item_lists, score_lists = [], []
        for lo, hi in zip(edges, edges[1:]):
            if lo == hi:
                item_lists.append(np.empty(0, dtype=np.int64))
                score_lists.append(np.empty(0))
                continue
            local_top = topk_from_scores(scores[lo:hi], k)
            item_lists.append(local_top + lo)
            score_lists.append(scores[lo:hi][local_top])
        items, merged = merge_topk(item_lists, score_lists, k)
        expected = topk_from_scores(scores, k)
        np.testing.assert_array_equal(items, expected)
        assert merged.tobytes() == scores[expected].tobytes()

    @settings(max_examples=80, deadline=None)
    @given(st.integers(2, 60), st.integers(1, 6), st.integers(0, 10**6),
           st.integers(1, 4))
    def test_short_shard_merge_matches_oracle_on_candidate_union(
            self, vocab, shards, seed, levels):
        """Shards returning *fewer* than k candidates (short ANN probe
        lists) must merge bitwise-identically to the exact oracle
        restricted to the union of submitted candidates — the merge may
        never invent, drop, or reorder entries relative to a
        ``topk_from_scores`` pass over just those candidates."""
        rng = np.random.default_rng(seed)
        scores = rng.integers(0, levels, size=vocab).astype(float)
        k = int(rng.integers(1, vocab + 1))
        item_lists, score_lists = [], []
        union = []
        for _ in range(shards):
            # Each shard submits an arbitrary-size (possibly empty,
            # possibly < k) candidate subset, disjoint from the others.
            take = int(rng.integers(0, k + 1))
            pool = np.setdiff1d(np.arange(vocab), np.concatenate(
                [np.asarray(u, dtype=np.int64) for u in union])
                if union else np.empty(0, dtype=np.int64))
            ids = rng.choice(pool, size=min(take, pool.size),
                             replace=False)
            local = topk_from_scores(scores[ids], min(k, ids.size)) \
                if ids.size else np.empty(0, dtype=np.int64)
            item_lists.append(ids[local] if ids.size else ids)
            score_lists.append(scores[ids][local] if ids.size
                               else np.empty(0))
            union.append(ids)
        candidates = np.sort(np.concatenate(union).astype(np.int64))
        items, merged = merge_topk(item_lists, score_lists, k)
        if not candidates.size:
            assert items.size == 0 and merged.size == 0
            return
        oracle_local = topk_from_scores(scores[candidates],
                                        min(k, candidates.size))
        expected = candidates[oracle_local]
        np.testing.assert_array_equal(items, expected)
        assert merged.tobytes() == scores[expected].tobytes()

    def test_membership_matches_tie_semantics(self):
        """An item is in the top-k iff fewer than k items precede it under
        the (-score, ascending index) total order — the same order under
        which ``ranks_from_scores`` counts tied competitors."""
        rng = np.random.default_rng(0)
        scores = rng.integers(0, 4, size=(5, 12)).astype(float)
        k = 6
        top = topk_from_scores(scores, k)
        for row in range(scores.shape[0]):
            returned = set(top[row].tolist())
            for item in range(scores.shape[1]):
                s = scores[row, item]
                ahead = ((scores[row] > s).sum()
                         + ((scores[row] == s)
                            & (np.arange(scores.shape[1]) < item)).sum())
                assert (item in returned) == (ahead < k)
