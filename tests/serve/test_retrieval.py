"""``topk_from_scores`` vs full sort, including adversarial tie layouts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import topk_from_scores


def full_sort_topk(scores, k):
    """Reference: full (-score, index) sort, first k columns."""
    order = np.lexsort((np.broadcast_to(np.arange(scores.shape[1]),
                                        scores.shape), -scores), axis=1)
    return order[:, :k]


class TestTopK:
    def test_simple(self):
        scores = np.array([[0.1, 0.9, 0.5, 0.3]])
        np.testing.assert_array_equal(topk_from_scores(scores, 2), [[1, 2]])

    def test_one_dimensional_input(self):
        top = topk_from_scores(np.array([3.0, 1.0, 2.0]), 2)
        np.testing.assert_array_equal(top, [0, 2])

    def test_k_clamped_to_vocab(self):
        scores = np.array([[2.0, 1.0, 3.0]])
        np.testing.assert_array_equal(topk_from_scores(scores, 10),
                                      [[2, 0, 1]])

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            topk_from_scores(np.zeros((2, 3)), 0)
        with pytest.raises(ValueError):
            topk_from_scores(np.zeros((2, 3, 4)), 1)

    def test_ties_prefer_lowest_index(self):
        scores = np.array([[1.0, 2.0, 2.0, 2.0, 0.5]])
        # Three-way tie at the top: ids 1, 2, 3 in ascending order.
        np.testing.assert_array_equal(topk_from_scores(scores, 2), [[1, 2]])

    def test_boundary_tie_group_larger_than_k(self):
        # Every entry tied: top-k must be exactly the first k indices,
        # whatever subset argpartition happened to select.
        scores = np.full((4, 9), 7.0)
        np.testing.assert_array_equal(
            topk_from_scores(scores, 3),
            np.tile(np.arange(3), (4, 1)))

    def test_constant_rows_mixed_with_distinct_rows(self):
        scores = np.array([[5.0, 5.0, 5.0, 5.0],
                           [1.0, 4.0, 3.0, 2.0]])
        np.testing.assert_array_equal(topk_from_scores(scores, 2),
                                      [[0, 1], [1, 2]])

    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 40), st.integers(1, 8), st.integers(0, 10**6),
           st.integers(1, 5))
    def test_matches_full_sort_with_heavy_ties(self, vocab, rows, seed,
                                               levels):
        rng = np.random.default_rng(seed)
        # Few distinct levels => many exact ties, the adversarial case.
        scores = rng.integers(0, levels, size=(rows, vocab)).astype(float)
        k = int(rng.integers(1, vocab + 1))
        np.testing.assert_array_equal(topk_from_scores(scores, k),
                                      full_sort_topk(scores, k))

    def test_membership_matches_tie_semantics(self):
        """An item is in the top-k iff fewer than k items precede it under
        the (-score, ascending index) total order — the same order under
        which ``ranks_from_scores`` counts tied competitors."""
        rng = np.random.default_rng(0)
        scores = rng.integers(0, 4, size=(5, 12)).astype(float)
        k = 6
        top = topk_from_scores(scores, k)
        for row in range(scores.shape[0]):
            returned = set(top[row].tolist())
            for item in range(scores.shape[1]):
                s = scores[row, item]
                ahead = ((scores[row] > s).sum()
                         + ((scores[row] == s)
                            & (np.arange(scores.shape[1]) < item)).sum())
                assert (item in returned) == (ahead < k)
