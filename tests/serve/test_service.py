"""RecommendService: micro-batching, LRU cache, incremental append,
and failure isolation under injected encode/score/forward faults."""

import numpy as np
import pytest

from repro.models import GRU4Rec, SASRec, SRGNN
from repro.resilience import Fault, FaultPlan, SimulatedCrash
from repro.serve import RecommendService, freeze

DIM = 16
MAX_LEN = 10
NUM_ITEMS = 40


@pytest.fixture(scope="module")
def gru_plan():
    model = GRU4Rec(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                    rng=np.random.default_rng(0))
    return freeze(model)


@pytest.fixture(scope="module")
def sasrec_plan():
    model = SASRec(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                   rng=np.random.default_rng(1))
    return freeze(model)


def random_requests(rng, count, min_len=1, max_len=MAX_LEN):
    return [(int(rng.integers(1, 100)),
             list(rng.integers(1, NUM_ITEMS + 1,
                               size=rng.integers(min_len, max_len + 1))))
            for _ in range(count)]


class TestBatchingEquivalence:
    def test_batched_equals_single(self, sasrec_plan):
        rng = np.random.default_rng(2)
        requests = random_requests(rng, 9)
        batched = RecommendService(sasrec_plan, k=5, cache_size=0,
                                   max_batch=4)
        single = RecommendService(sasrec_plan, k=5, cache_size=0)
        many = batched.recommend_many(requests)
        assert batched.stats.batches == 3  # ceil(9 / 4)
        for req, rec in zip(requests, many):
            alone = single.recommend(*req)
            np.testing.assert_array_equal(rec.items, alone.items)
            np.testing.assert_allclose(rec.scores, alone.scores, atol=1e-9)

    def test_matches_graph_model_topk(self):
        from repro.data.batching import pad_sequences
        from repro.nn import no_grad
        from repro.serve import topk_from_scores

        model = SASRec(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                       rng=np.random.default_rng(3))
        service = RecommendService(model, k=5)   # freezes internally
        seq = [3, 7, 9, 2]
        rec = service.recommend(11, seq)
        items, mask, _ = pad_sequences([seq], max_len=MAX_LEN)
        model.eval()
        with no_grad():
            logits = model.forward(items, mask).data
        np.testing.assert_array_equal(rec.items,
                                      topk_from_scores(logits, 5)[0])

    def test_fallback_plan_served(self):
        model = SRGNN(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                      rng=np.random.default_rng(4))
        service = RecommendService(model, k=4)
        recs = service.recommend_many(random_requests(
            np.random.default_rng(5), 5, min_len=2))
        assert len(recs) == 5
        assert all(len(r.items) == 4 for r in recs)

    def test_rejects_empty_sequence(self, gru_plan):
        with pytest.raises(ValueError):
            RecommendService(gru_plan).enqueue(1, [])


class TestCache:
    def test_exact_repeat_hits_cache(self, sasrec_plan):
        service = RecommendService(sasrec_plan, k=5)
        first = service.recommend(1, [2, 3, 4])
        again = service.recommend(1, [2, 3, 4])
        assert not first.from_cache and again.from_cache
        assert service.stats.cache_hits == 1
        assert service.stats.full_encodes == 1
        np.testing.assert_array_equal(first.items, again.items)

    def test_same_sequence_different_user_misses(self, sasrec_plan):
        service = RecommendService(sasrec_plan, k=5)
        service.recommend(1, [2, 3, 4])
        other = service.recommend(2, [2, 3, 4])
        assert not other.from_cache

    def test_divergent_sequence_misses(self, sasrec_plan):
        service = RecommendService(sasrec_plan, k=5)
        service.recommend(1, [2, 3, 4])
        diverged = service.recommend(1, [2, 3, 5])
        assert not diverged.from_cache and not diverged.incremental
        assert service.stats.full_encodes == 2

    def test_lru_eviction(self, sasrec_plan):
        service = RecommendService(sasrec_plan, k=5, cache_size=2)
        service.recommend(1, [2])
        service.recommend(2, [3])
        service.recommend(1, [2])        # refresh user 1 -> user 2 is LRU
        service.recommend(3, [4])        # evicts user 2
        assert service.stats.evictions == 1
        assert service.recommend(1, [2]).from_cache
        assert not service.recommend(2, [3]).from_cache

    def test_cache_disabled(self, sasrec_plan):
        service = RecommendService(sasrec_plan, k=5, cache_size=0)
        service.recommend(1, [2, 3])
        assert not service.recommend(1, [2, 3]).from_cache
        assert service.stats.cache_hits == 0


class TestIncrementalAppend:
    def test_append_one_item_is_incremental_and_exact(self, gru_plan):
        service = RecommendService(gru_plan, k=5, padding="tight")
        seq = [3, 7, 9]
        service.recommend(1, seq)
        extended = service.recommend(1, seq + [2])
        assert extended.incremental
        assert service.stats.incremental_hits == 1

        fresh = RecommendService(gru_plan, k=5, padding="tight",
                                 cache_size=0)
        full = fresh.recommend(1, seq + [2])
        assert not full.incremental
        np.testing.assert_array_equal(extended.items, full.items)
        np.testing.assert_allclose(extended.scores, full.scores, atol=1e-9)

    def test_chained_appends(self, gru_plan):
        service = RecommendService(gru_plan, k=5, padding="tight")
        seq = [4, 8]
        service.recommend(2, seq)
        for item in (1, 5, 9):
            seq = seq + [item]
            assert service.recommend(2, seq).incremental
        assert service.stats.incremental_hits == 3

    def test_divergence_forces_full_encode(self, gru_plan):
        service = RecommendService(gru_plan, k=5, padding="tight")
        service.recommend(1, [3, 7])
        rec = service.recommend(1, [3, 8, 2])  # prefix [3, 8] not cached
        assert not rec.incremental
        assert service.stats.incremental_hits == 0

    def test_window_slide_stays_incremental_across_rollover(self,
                                                            gru_plan):
        """Regression (long-session bug): appending past max_len shifts
        the window, so the ``(user, seq[:-1])`` cache key can never
        match — the per-user rolling state must keep the cheap path
        alive.  A slid hit advances the full-history recurrence, so its
        result matches encoding the *untruncated* sequence."""
        service = RecommendService(gru_plan, k=5, padding="tight")
        seq = list(range(1, MAX_LEN + 1))       # exactly max_len items
        service.recommend(1, seq)
        slid = service.recommend(1, seq + [11])  # window drops seq[0]
        assert slid.incremental
        assert service.stats.incremental_hits > 0
        # parity: the rolled state tracks the full (untruncated) history
        from repro.data.batching import pad_sequences
        items, mask, _ = pad_sequences([seq + [11]],
                                       max_len=MAX_LEN + 1)
        rep = gru_plan.encode_tight(items, mask)
        expected_scores = gru_plan.score(rep)[0]
        from repro.serve import topk_from_scores
        expected_top = topk_from_scores(expected_scores[None], 5)[0]
        np.testing.assert_array_equal(slid.items, expected_top)
        np.testing.assert_allclose(
            slid.scores, expected_scores[expected_top], atol=1e-9)

    def test_rollover_incremental_hits_survive_many_appends(self,
                                                            gru_plan):
        """Every append after the first stays incremental, even once the
        window is saturated and truncation re-keys the cache."""
        service = RecommendService(gru_plan, k=5, padding="tight")
        seq = [1, 2]
        service.recommend(1, seq)
        for item in range(3, MAX_LEN + 6):      # grows well past max_len
            seq = seq + [item]
            assert service.recommend(1, seq).incremental
        assert service.stats.incremental_hits == MAX_LEN + 3
        assert service.stats.incremental_failures == 0

    def test_attention_kv_rollover_reencodes_but_recovers(self,
                                                          sasrec_plan):
        """KV-prefix state is positional, so a slide at max_len must
        force a full re-encode (stale positions would be wrong) — and
        the re-encoded result must match a cold service exactly."""
        service = RecommendService(sasrec_plan, k=5, padding="tight")
        seq = list(range(1, MAX_LEN + 1))
        service.recommend(1, seq)
        slid = service.recommend(1, seq + [11])
        assert not slid.incremental        # positions cannot slide
        fresh = RecommendService(sasrec_plan, k=5, padding="tight",
                                 cache_size=0)
        expected = fresh.recommend(1, seq + [11])
        np.testing.assert_array_equal(slid.items, expected.items)
        np.testing.assert_allclose(slid.scores, expected.scores,
                                   atol=1e-9)

    def test_attention_incremental_append_is_exact(self, sasrec_plan):
        """SASRec KV-prefix append reaches max_len incrementally and
        matches the cold tight encode."""
        service = RecommendService(sasrec_plan, k=5, padding="tight")
        seq = [3, 7, 9]
        service.recommend(1, seq)
        for item in range(1, MAX_LEN - len(seq) + 1):
            seq = seq + [item]
            rec = service.recommend(1, seq)
            assert rec.incremental
            fresh = RecommendService(sasrec_plan, k=5, padding="tight",
                                     cache_size=0)
            full = fresh.recommend(1, seq)
            np.testing.assert_array_equal(rec.items, full.items)
            np.testing.assert_allclose(rec.scores, full.scores,
                                       atol=1e-9)
        assert len(seq) == MAX_LEN             # reached the window edge
        assert service.stats.incremental_hits == MAX_LEN - 3
        assert service.stats.incremental_failures == 0

    def test_tight_requires_tight_capable_plan(self):
        from repro.models import Caser
        model = Caser(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                      rng=np.random.default_rng(5))
        with pytest.raises(ValueError):
            RecommendService(model, padding="tight")

    def test_incremental_failure_is_counted_and_recovered(self, gru_plan):
        """A broken ``append_item`` must degrade to a full encode *and*
        leave a trace: count + first failure message."""
        service = RecommendService(gru_plan, k=5, padding="tight")
        seq = [3, 7, 9]
        service.recommend(1, seq)
        def broken(state, item):
            raise RuntimeError("kv drift")

        service.plan.append_item = broken
        try:
            rec = service.recommend(1, seq + [2])
        finally:
            del service.plan.append_item       # restore the class method
        assert not rec.failed and not rec.incremental
        assert service.stats.incremental_failures == 1
        assert "kv drift" in service.stats.first_incremental_failure
        stats = service.stats
        assert (stats.cache_hits + stats.full_encodes
                + stats.incremental_hits == stats.requests)

    def test_tight_results_independent_of_queue_width(self, gru_plan):
        """Step-masked tight encoding must give a short sequence the same
        scores whether it is batched alone (no padding) or alongside a
        long sequence (heavy left padding)."""
        short = (1, [3, 7])
        long = (2, list(range(1, MAX_LEN + 1)))
        alone = RecommendService(gru_plan, k=5, padding="tight",
                                 cache_size=0).recommend(*short)
        padded = RecommendService(gru_plan, k=5, padding="tight",
                                  cache_size=0).recommend_many(
            [short, long])[0]
        np.testing.assert_array_equal(alone.items, padded.items)
        np.testing.assert_allclose(alone.scores, padded.scores, atol=1e-12)


class TestCacheAccountingUnderLoad:
    """LRU eviction and from_cache accounting across interleaved
    flushes and the per-request retry path (what the cluster's
    per-shard services run under sustained traffic)."""

    def test_interleaved_flushes_account_every_request(self, sasrec_plan):
        service = RecommendService(sasrec_plan, k=5, cache_size=8,
                                   max_batch=4)
        hot = [(u, (u, u + 1)) for u in (1, 2, 3)]
        first = service.recommend_many(hot)
        assert [r.from_cache for r in first] == [False, False, False]
        mixed = [hot[0], (7, (9, 9)), hot[1], (8, (6, 2)), hot[2]]
        second = service.recommend_many(mixed)
        assert [r.from_cache for r in second] == [True, False, True,
                                                  False, True]
        stats = service.stats
        assert stats.cache_hits == 3
        assert stats.full_encodes == 5
        assert (stats.cache_hits + stats.full_encodes
                + stats.incremental_hits == stats.requests == 8)

    def test_eviction_under_interleaved_flushes(self, sasrec_plan):
        service = RecommendService(sasrec_plan, k=5, cache_size=2)
        service.recommend_many([(1, (2,)), (2, (3,))])   # cache {1, 2}
        service.recommend_many([(1, (2,)), (3, (4,))])   # hit 1, evict 2
        assert service.stats.evictions == 1
        third = service.recommend_many([(2, (3,)), (1, (2,))])
        assert not third[0].from_cache       # user 2 was the eviction
        assert third[1].from_cache           # user 1 stayed resident
        assert service.stats.evictions == 2  # re-adding 2 evicted 3

    def test_duplicates_in_one_flush_encode_then_hit_later(self,
                                                           sasrec_plan):
        # Two identical requests in one flush both miss (the first's
        # entry is not visible mid-partition) — the accounting must
        # show 2 encodes, and only later repeats become hits.
        service = RecommendService(sasrec_plan, k=5)
        results = service.recommend_many([(1, (2, 3)), (1, (2, 3))])
        assert [r.from_cache for r in results] == [False, False]
        assert service.stats.full_encodes == 2
        assert service.recommend(1, (2, 3)).from_cache
        assert service.stats.cache_hits == 1

    def test_per_request_retry_results_are_cached(self, sasrec_plan):
        requests = [(u, (u, u + 1, u + 2)) for u in range(1, 7)]
        service = RecommendService(sasrec_plan, k=5, max_batch=6)
        with FaultPlan([Fault(site="serve.encode", action="raise")]):
            results = service.recommend_many(requests)
        assert not any(r.failed for r in results)
        assert service.stats.chunk_retries == 1
        assert service.stats.full_encodes == len(requests)
        # The retried encodes landed in the LRU like any batched encode:
        # exact repeats are pure cache hits, no re-encode.
        again = service.recommend_many(requests)
        assert all(r.from_cache for r in again)
        assert service.stats.cache_hits == len(requests)
        assert service.stats.full_encodes == len(requests)

    def test_cached_entries_serve_through_encode_outage(self,
                                                        sasrec_plan):
        service = RecommendService(sasrec_plan, k=5, max_batch=4)
        warm = (1, (2, 3, 4))
        service.recommend(*warm)
        with FaultPlan([Fault(site="serve.encode", action="raise",
                              count=1000)]):
            results = service.recommend_many([warm, (9, (8, 7))])
        assert results[0].from_cache and not results[0].failed
        assert results[1].failed
        assert service.stats.errors == 1


class TestFailureIsolation:
    """Injected faults at serve.encode / serve.score / serve.forward:
    one bad chunk must never take down the whole flush."""

    def test_failing_encode_chunk_recovers_per_request(self, sasrec_plan):
        requests = random_requests(np.random.default_rng(6), 8)
        service = RecommendService(sasrec_plan, k=5, max_batch=4,
                                   cache_size=0)
        with FaultPlan([Fault(site="serve.encode", action="raise")]):
            results = service.recommend_many(requests)
        assert len(results) == len(requests)
        assert not any(r.failed for r in results)
        assert service.stats.chunk_retries == 1
        reference = RecommendService(sasrec_plan, k=5, cache_size=0)
        for req, rec in zip(requests, results):
            expected = reference.recommend(*req)
            np.testing.assert_array_equal(rec.items, expected.items)
            np.testing.assert_allclose(rec.scores, expected.scores,
                                       atol=1e-9)

    def test_persistent_encode_fault_answers_with_errors(self, sasrec_plan):
        requests = random_requests(np.random.default_rng(7), 6)
        service = RecommendService(sasrec_plan, k=5, max_batch=4,
                                   cache_size=0)
        with FaultPlan([Fault(site="serve.encode", action="raise",
                              count=1000)]):
            results = service.recommend_many(requests)
        assert len(results) == len(requests)        # nothing dropped
        assert all(r.failed for r in results)
        assert all("FaultInjected" in r.error for r in results)
        assert all(r.items.size == 0 for r in results)
        assert service.stats.errors == len(requests)
        assert service.flush() == []                # queue was drained
        # Error results are never cached: the same request succeeds
        # once the fault clears.
        healthy = service.recommend(*requests[0])
        assert not healthy.failed

    def test_failing_score_chunk_recovers_per_row(self, sasrec_plan):
        requests = random_requests(np.random.default_rng(8), 5)
        service = RecommendService(sasrec_plan, k=5, cache_size=0)
        with FaultPlan([Fault(site="serve.score", action="raise")]):
            results = service.recommend_many(requests)
        assert not any(r.failed for r in results)
        assert service.stats.chunk_retries == 1
        reference = RecommendService(sasrec_plan, k=5, cache_size=0)
        for req, rec in zip(requests, results):
            np.testing.assert_array_equal(
                rec.items, reference.recommend(*req).items)

    def test_fallback_forward_fault_isolated_and_cached(self):
        model = SRGNN(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                      rng=np.random.default_rng(9))
        service = RecommendService(model, k=4, max_batch=4)
        requests = random_requests(np.random.default_rng(10), 4, min_len=2)
        with FaultPlan([Fault(site="serve.forward", action="raise")]):
            results = service.recommend_many(requests)
        assert not any(r.failed for r in results)
        assert service.stats.chunk_retries == 1
        # Per-request retry results land in the same LRU as the batched
        # path: an exact repeat is a cache hit.
        again = service.recommend(*requests[0])
        assert again.from_cache
        np.testing.assert_array_equal(again.items, results[0].items)

    def test_escaping_exception_preserves_queue(self, sasrec_plan):
        """SimulatedCrash is a BaseException: it escapes the per-chunk
        containment, and the pending queue must survive for a retry."""
        requests = random_requests(np.random.default_rng(11), 3)
        service = RecommendService(sasrec_plan, k=5, cache_size=0)
        for user, seq in requests:
            service.enqueue(user, seq)
        with FaultPlan([Fault(site="serve.encode", action="kill")]):
            with pytest.raises(SimulatedCrash):
                service.flush()
        retried = service.flush()                   # plan disarmed
        assert len(retried) == len(requests)
        assert not any(r.failed for r in retried)


class TestInProcessSwap:
    """``RecommendService.swap_plan``: in-process hot swap clears the
    caches, recomputes incremental support, and returns the old plan."""

    def test_swap_serves_new_plan_and_returns_old(self, sasrec_plan):
        new = freeze(SASRec(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                            rng=np.random.default_rng(20)))
        service = RecommendService(sasrec_plan, k=5)
        before = service.recommend(1, (2, 3, 4))
        previous = service.swap_plan(new)
        assert previous is sasrec_plan
        assert service.stats.plan_swaps == 1
        after = service.recommend(1, (2, 3, 4))
        assert not after.from_cache                 # caches were cleared
        want = RecommendService(new, k=5, cache_size=0).recommend(
            1, (2, 3, 4))
        np.testing.assert_array_equal(after.items, want.items)
        assert after.scores.tobytes() == want.scores.tobytes()
        assert before.scores.tobytes() != after.scores.tobytes()

    def test_swap_rejects_incompatible_tight_plan(self, gru_plan):
        from repro.models import Caser
        service = RecommendService(gru_plan, k=5, padding="tight")
        caser = Caser(num_items=NUM_ITEMS, dim=DIM, max_len=MAX_LEN,
                      rng=np.random.default_rng(21))
        with pytest.raises(ValueError):
            service.swap_plan(caser)
        assert service.stats.plan_swaps == 0
        assert not service.recommend(1, (2, 3)).failed
