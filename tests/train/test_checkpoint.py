"""Tests for checkpoint save/load."""

import numpy as np
import pytest

from repro.models import GRU4Rec, SASRec
from repro.nn import SGD, Adam
from repro.train.checkpoint import load_checkpoint, save_checkpoint


def make_model(seed=0):
    return GRU4Rec(num_items=20, dim=8, max_len=6,
                   rng=np.random.default_rng(seed))


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        model = make_model(seed=0)
        path = save_checkpoint(model, tmp_path / "ckpt.npz",
                               metadata={"epoch": 3})
        other = make_model(seed=1)
        assert not np.allclose(other.item_embedding.weight.data,
                               model.item_embedding.weight.data)
        meta = load_checkpoint(other, path)
        assert meta == {"epoch": 3}
        np.testing.assert_array_equal(other.item_embedding.weight.data,
                                      model.item_embedding.weight.data)

    def test_optimizer_state_roundtrip(self, tmp_path):
        model = make_model()
        opt = Adam(model.parameters(), lr=0.01)
        # Take a couple of steps to populate the moments.
        for _ in range(3):
            opt.zero_grad()
            (model.item_embedding.weight * 2.0).sum().backward()
            opt.step()
        path = save_checkpoint(model, tmp_path / "c.npz", optimizer=opt)
        model2 = make_model()
        opt2 = Adam(model2.parameters(), lr=0.01)
        load_checkpoint(model2, path, optimizer=opt2)
        assert opt2._t == opt._t
        np.testing.assert_array_equal(opt2._m[0], opt._m[0])

    def test_sgd_state_roundtrip(self, tmp_path):
        model = make_model()
        opt = SGD(model.parameters(), lr=0.01, momentum=0.9)
        for _ in range(3):
            opt.zero_grad()
            (model.item_embedding.weight * 2.0).sum().backward()
            opt.step()
        path = save_checkpoint(model, tmp_path / "c.npz", optimizer=opt)
        model2 = make_model(seed=1)
        opt2 = SGD(model2.parameters(), lr=0.01, momentum=0.9)
        load_checkpoint(model2, path, optimizer=opt2)
        for mine, theirs in zip(opt2._velocity, opt._velocity):
            np.testing.assert_array_equal(mine, theirs)

    def test_optimizer_type_mismatch_rejected(self, tmp_path):
        model = make_model()
        sgd = SGD(model.parameters(), lr=0.01, momentum=0.9)
        path = save_checkpoint(model, tmp_path / "c.npz", optimizer=sgd)
        adam = Adam(make_model().parameters())
        with pytest.raises(TypeError, match="SGD state"):
            load_checkpoint(make_model(), path, optimizer=adam)

    def test_unknown_optimizer_type_rejected(self, tmp_path):
        class Lion:
            pass

        model = make_model()
        with pytest.raises(TypeError, match="supported: Adam, SGD"):
            save_checkpoint(model, tmp_path / "c.npz", optimizer=Lion())

    def test_wrong_architecture_rejected(self, tmp_path):
        model = make_model()
        path = save_checkpoint(model, tmp_path / "c.npz")
        other = SASRec(num_items=20, dim=8, max_len=6,
                       rng=np.random.default_rng(0))
        with pytest.raises(KeyError):
            load_checkpoint(other, path)

    def test_failed_load_leaves_model_untouched(self, tmp_path):
        # A name mismatch must raise before ANY parameter is written:
        # no partial restore into the wrong architecture.
        model = make_model()
        path = save_checkpoint(model, tmp_path / "c.npz")
        other = SASRec(num_items=20, dim=8, max_len=6,
                       rng=np.random.default_rng(0))
        before = {name: p.data.copy()
                  for name, p in other.named_parameters()}
        with pytest.raises(KeyError):
            load_checkpoint(other, path)
        for name, p in other.named_parameters():
            np.testing.assert_array_equal(p.data, before[name])

    def test_missing_optimizer_state(self, tmp_path):
        model = make_model()
        path = save_checkpoint(model, tmp_path / "c.npz")
        opt = Adam(model.parameters())
        with pytest.raises(KeyError):
            load_checkpoint(model, path, optimizer=opt)

    def test_training_resumes_identically(self, tmp_path):
        """Checkpoint mid-training, resume, and match a continuous run."""
        from repro.data.batching import Batch, pad_sequences

        def batch():
            items, mask, lengths = pad_sequences([[1, 2, 3], [4, 5, 6]],
                                                 max_len=6)
            return Batch(users=np.array([1, 2]), items=items, mask=mask,
                         lengths=lengths, targets=np.array([4, 7]))

        def steps(model, opt, n):
            model.eval()  # no dropout randomness
            for _ in range(n):
                opt.zero_grad()
                model.loss(batch()).backward()
                opt.step()

        # Continuous run of 6 steps.
        cont = make_model()
        cont_opt = Adam(cont.parameters(), lr=0.01)
        steps(cont, cont_opt, 6)

        # 3 steps, checkpoint, restore into a fresh model, 3 more steps.
        first = make_model()
        first_opt = Adam(first.parameters(), lr=0.01)
        steps(first, first_opt, 3)
        path = save_checkpoint(first, tmp_path / "mid.npz",
                               optimizer=first_opt)
        resumed = make_model()
        resumed_opt = Adam(resumed.parameters(), lr=0.01)
        load_checkpoint(resumed, path, optimizer=resumed_opt)
        steps(resumed, resumed_opt, 3)

        np.testing.assert_allclose(
            resumed.item_embedding.weight.data,
            cont.item_embedding.weight.data, atol=1e-12)
