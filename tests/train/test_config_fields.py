"""Small contract tests for TrainConfig/TrainResult dataclasses."""

import numpy as np

from repro.train import TrainConfig, TrainResult


class TestTrainConfig:
    def test_defaults_match_paper_protocol(self):
        config = TrainConfig()
        assert config.learning_rate == 1e-3   # Adam lr of Sec. IV-A3
        assert config.patience == 10          # early-stop patience
        assert config.eval_metric == "HR@20"  # early-stop metric
        assert config.batch_size == 256       # paper's mini-batch size

    def test_replaceable(self):
        from dataclasses import replace
        config = replace(TrainConfig(), epochs=3, weight_decay=1e-4)
        assert config.epochs == 3 and config.weight_decay == 1e-4


class TestTrainResult:
    def test_history_is_per_epoch(self):
        result = TrainResult(best_metric=0.5, best_epoch=1, epochs_run=2,
                             history=[{"loss": 1.0}, {"loss": 0.5}])
        assert len(result.history) == result.epochs_run
        assert result.history[result.best_epoch]["loss"] == 0.5
