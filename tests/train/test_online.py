"""Online fine-tune jobs: event-log materialization, memoization on the
chain head, crash resume, and corrupted-entry invalidation."""

import numpy as np
import pytest

from repro.data import open_event_log
from repro.registry import model_spec
from repro.resilience import Fault, FaultPlan, SimulatedCrash
from repro.train import FineTuneStore, dataset_from_log, fine_tune_spec

NUM_ITEMS = 30


@pytest.fixture
def log(tmp_path):
    log = open_event_log(tmp_path / "log")
    rng = np.random.default_rng(0)
    for _ in range(3):
        log.append(rng.integers(1, 15, 40), rng.integers(1, NUM_ITEMS, 40))
    return log


@pytest.fixture
def spec():
    return fine_tune_spec(model_spec("GRU4Rec"), scale="smoke", seed=0,
                          max_len=10, train={"epochs": 2})


def weights(model):
    return [p.data.copy() for p in model.parameters()]


class TestDatasetFromLog:
    def test_sequences_follow_timestamps(self, tmp_path):
        log = open_event_log(tmp_path / "log")
        log.append([1, 2, 1], [5, 6, 7], timestamps=[10, 0, 5])
        ds = dataset_from_log(log)
        assert ds.sequences[1] == [7, 5]            # ts 5 before ts 10
        assert ds.sequences[2] == [6]
        assert ds.num_items == 7
        assert ds.metadata["eventlog_chain_head"] == log.chain_head

    def test_declared_universe_must_cover_log(self, tmp_path):
        log = open_event_log(tmp_path / "log")
        log.append([1], [9])
        with pytest.raises(ValueError):
            dataset_from_log(log, num_items=5)
        assert dataset_from_log(log, num_items=20).num_items == 20


class TestMemoization:
    def test_hit_restores_bitwise_identical_weights(self, tmp_path, log,
                                                    spec):
        store = FineTuneStore(tmp_path / "jobs")
        first = store.fine_tune(log, spec, num_items=NUM_ITEMS)
        second = store.fine_tune(log, spec, num_items=NUM_ITEMS)
        assert not first.cached and second.cached
        assert store.stats() == {"hits": 1, "misses": 1}
        for ours, theirs in zip(weights(first.model),
                                weights(second.model)):
            np.testing.assert_array_equal(ours, theirs)

    def test_new_segment_changes_the_key(self, tmp_path, log, spec):
        store = FineTuneStore(tmp_path / "jobs")
        before = store.fine_tune(log, spec, num_items=NUM_ITEMS)
        log.append([1, 2], [3, 4])
        after = store.fine_tune(log, spec, num_items=NUM_ITEMS)
        assert not after.cached
        assert after.chain_head != before.chain_head

    def test_corrupted_entry_invalidates_and_retrains(self, tmp_path, log,
                                                      spec):
        store = FineTuneStore(tmp_path / "jobs")
        first = store.fine_tune(log, spec, num_items=NUM_ITEMS)
        first.checkpoint.write_bytes(b"garbage")
        again = store.fine_tune(log, spec, num_items=NUM_ITEMS)
        assert not again.cached
        for ours, theirs in zip(weights(first.model),
                                weights(again.model)):
            np.testing.assert_array_equal(ours, theirs)


class TestCrashResume:
    def test_killed_job_resumes_to_reference_weights(self, tmp_path, log,
                                                     spec):
        reference = FineTuneStore(tmp_path / "ref").fine_tune(
            log, spec, num_items=NUM_ITEMS)
        store = FineTuneStore(tmp_path / "jobs")
        with FaultPlan([Fault(site="trainer.state.before", action="kill",
                              hit=2)]):
            with pytest.raises(SimulatedCrash):
                store.fine_tune(log, spec, num_items=NUM_ITEMS)
        entry = store.entry_dir(spec, log.chain_head)
        assert (entry / "train_state.npz").exists()  # the resume point
        resumed = store.fine_tune(log, spec, num_items=NUM_ITEMS)
        assert not resumed.cached
        assert resumed.result.history == reference.result.history
        for ours, theirs in zip(weights(resumed.model),
                                weights(reference.model)):
            np.testing.assert_array_equal(ours, theirs)
        assert not (entry / "train_state.npz").exists()  # spent on commit
