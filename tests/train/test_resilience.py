"""Chaos/crash tests: fault harness, atomic persistence, exact resume.

Covers the crash-safety contract end to end: the deterministic
:class:`FaultPlan` harness itself, the write-then-``os.replace`` atomic
helpers, suffix-normalized atomic checkpoints, run-store recovery from
truncated/partial/torn artifacts, and the headline guarantee — a
training run killed mid-way resumes to bitwise-identical final metrics.
"""

import json
import zipfile

import numpy as np
import pytest

from repro.data import generate, leave_one_out_split
from repro.models import GRU4Rec
from repro.registry import model_spec
from repro.resilience import (Fault, FaultInjected, FaultPlan,
                              SimulatedCrash, atomic_save_npz,
                              atomic_write_bytes, clean_stale_tmp,
                              fault_point, filter_payload, is_tmp_artifact)
from repro.runs import RunStore, run_spec
from repro.train import (TrainConfig, Trainer, load_checkpoint,
                         load_training_state, save_checkpoint,
                         save_training_state)


@pytest.fixture(scope="module")
def split():
    return leave_one_out_split(generate("beauty", seed=0, scale=0.3),
                               max_len=10)


def make_model(seed=0):
    return GRU4Rec(num_items=72, dim=16, max_len=10,
                   rng=np.random.default_rng(seed))


def smoke_spec(**overrides):
    defaults = dict(train={"epochs": 2, "batch_size": 64}, seed=0)
    defaults.update(overrides)
    return run_spec("beauty", "smoke", model_spec("GRU4Rec", dim=8),
                    **defaults)


class TestFaultPlan:
    def test_unarmed_sites_are_noops(self):
        fault_point("nowhere")  # no plan armed: must not raise
        assert filter_payload("nowhere", b"data") == b"data"

    def test_raise_fires_on_exact_hit(self):
        plan = FaultPlan([Fault(site="s", action="raise", hit=2)])
        with plan:
            fault_point("s")  # hit 1: passes
            with pytest.raises(FaultInjected):
                fault_point("s")  # hit 2: fires
            fault_point("s")  # hit 3: passes again
        assert [f.hit for f in plan.fired] == [2]

    def test_count_spans_consecutive_hits(self):
        plan = FaultPlan([Fault(site="s", action="raise", hit=1, count=2)])
        with plan:
            for _ in range(2):
                with pytest.raises(FaultInjected):
                    fault_point("s")
            fault_point("s")  # hit 3: beyond the window

    def test_kill_is_uncatchable_by_except_exception(self):
        plan = FaultPlan([Fault(site="s", action="kill")])
        with plan:
            with pytest.raises(SimulatedCrash):
                try:
                    fault_point("s")
                except Exception:  # recovery code must not survive a kill
                    pytest.fail("SimulatedCrash was caught as Exception")

    def test_only_one_plan_armed(self):
        with FaultPlan([]):
            with pytest.raises(RuntimeError, match="already armed"):
                FaultPlan([]).arm()

    def test_truncate_and_corrupt_are_deterministic(self):
        data = bytes(range(256)) * 8
        fault = Fault(site="p", action="truncate", fraction=0.25)
        with FaultPlan([fault]) as plan:
            cut = plan.damage("p", data)
        assert cut == data[:len(data) // 4]
        with FaultPlan([Fault(site="p", action="corrupt")], seed=7) as one:
            first = one.damage("p", data)
        with FaultPlan([Fault(site="p", action="corrupt")], seed=7) as two:
            second = two.damage("p", data)
        assert first == second != data

    def test_random_plans_reproducible(self):
        kwargs = dict(point_sites=["a", "b"], payload_sites=["c"],
                      seed=11, faults=4)
        one = FaultPlan.random(**kwargs)
        two = FaultPlan.random(**kwargs)
        assert [vars(f) for f in one.faults] == [vars(f) for f in two.faults]
        assert all(f.action != "kill" for f in one.faults)

    def test_json_roundtrip(self):
        plan = FaultPlan([Fault(site="s", action="truncate", hit=3,
                                fraction=0.4)], seed=5)
        restored = FaultPlan.from_json(plan.to_json())
        assert [vars(f) for f in restored.faults] == \
            [vars(f) for f in plan.faults]
        assert restored.seed == 5


class TestAtomicWrites:
    def test_fault_before_leaves_destination_untouched(self, tmp_path):
        target = tmp_path / "data.bin"
        target.write_bytes(b"old")
        with FaultPlan([Fault(site="w.before", action="raise")]):
            with pytest.raises(FaultInjected):
                atomic_write_bytes(target, b"new", site="w")
        assert target.read_bytes() == b"old"

    def test_fault_at_replace_keeps_old_content(self, tmp_path):
        # The crash window between fsync and rename: destination intact,
        # only a stale temp file left behind — which cleanup removes.
        target = tmp_path / "data.bin"
        target.write_bytes(b"old")
        with FaultPlan([Fault(site="w.replace", action="raise")]):
            with pytest.raises(FaultInjected):
                atomic_write_bytes(target, b"new", site="w")
        assert target.read_bytes() == b"old"
        atomic_write_bytes(target, b"new", site=None)
        assert target.read_bytes() == b"new"
        assert clean_stale_tmp(tmp_path) == 0  # failed write self-cleaned

    def test_hard_kill_window_leaves_only_tmp(self, tmp_path):
        # SimulatedCrash (BaseException) still unwinds through the
        # cleanup handler; what matters is the destination never holds
        # a torn write.
        target = tmp_path / "data.bin"
        with FaultPlan([Fault(site="w.replace", action="kill")]):
            with pytest.raises(SimulatedCrash):
                atomic_write_bytes(target, b"new", site="w")
        assert not target.exists()

    def test_payload_faults_land_in_final_file(self, tmp_path):
        # truncate/corrupt simulate bitrot the *readers* must detect:
        # the damaged bytes are committed to the destination.
        target = tmp_path / "data.bin"
        payload = b"x" * 100
        with FaultPlan([Fault(site="w", action="truncate", fraction=0.5)]):
            atomic_write_bytes(target, payload, site="w")
        assert target.read_bytes() == payload[:50]

    def test_tmp_artifact_naming(self, tmp_path):
        assert is_tmp_artifact(tmp_path / ".model.npz.tmp-123")
        assert not is_tmp_artifact(tmp_path / "model.npz")
        (tmp_path / ".stale.tmp-999").write_bytes(b"")
        assert clean_stale_tmp(tmp_path) == 1


class TestAtomicCheckpoint:
    def test_suffix_normalized_and_returned(self, tmp_path):
        # np.savez used to append .npz silently, diverging from the
        # caller's path; save_checkpoint now returns the real path.
        model = make_model()
        returned = save_checkpoint(model, tmp_path / "weights")
        assert returned == tmp_path / "weights.npz"
        assert returned.exists()
        load_checkpoint(make_model(1), returned)

    def test_failed_save_preserves_previous_checkpoint(self, tmp_path):
        path = tmp_path / "model.npz"
        model = make_model()
        save_checkpoint(model, path)
        before = path.read_bytes()
        with FaultPlan([Fault(site="checkpoint.save.replace",
                              action="raise")]):
            with pytest.raises(FaultInjected):
                save_checkpoint(make_model(1), path)
        assert path.read_bytes() == before

    def test_truncated_checkpoint_raises_cleanly(self, tmp_path):
        path = tmp_path / "model.npz"
        model = make_model()
        save_checkpoint(model, path)
        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) // 2])
        with pytest.raises((zipfile.BadZipFile, ValueError, KeyError,
                            OSError)):
            load_checkpoint(make_model(1), path)

    def test_training_state_roundtrip(self, tmp_path, split):
        model = make_model()
        trainer = Trainer(model, split, TrainConfig(epochs=1, batch_size=32))
        trainer.fit()
        state = {"epoch": 0, "note": "x"}
        best = model.state_dict()
        path = save_training_state(model, trainer.optimizer,
                                   tmp_path / "state.npz", state,
                                   best_state=best)
        fresh = make_model(1)
        fresh_trainer = Trainer(fresh, split,
                                TrainConfig(epochs=1, batch_size=32))
        loaded_state, loaded_best = load_training_state(
            fresh, fresh_trainer.optimizer, path)
        assert loaded_state == state
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(fresh.state_dict()[name], value)
            np.testing.assert_array_equal(loaded_best[name], best[name])
        assert fresh_trainer.optimizer._t == trainer.optimizer._t
        for ours, theirs in zip(fresh_trainer.optimizer._m,
                                trainer.optimizer._m):
            np.testing.assert_array_equal(ours, theirs)


class TestTrainerResume:
    def _fit(self, split, tmp_path, name, epochs=5, crash_at=None):
        model = make_model(seed=3)
        config = TrainConfig(epochs=epochs, batch_size=32, patience=10,
                             seed=3, checkpoint_path=str(tmp_path / name),
                             resume=True)
        trainer = Trainer(model, split, config)
        if crash_at is None:
            return model, trainer.fit()
        plan = FaultPlan([Fault(site="trainer.state.before", action="kill",
                                hit=crash_at)])
        with plan:
            with pytest.raises(SimulatedCrash):
                trainer.fit()
        return model, None

    def test_kill_and_resume_bitwise_identical(self, split, tmp_path):
        ref_model, reference = self._fit(split, tmp_path, "ref.npz")
        # Crash at the third per-epoch save (i.e. after epoch 2's
        # training work, before its state is persisted).
        self._fit(split, tmp_path, "crash.npz", crash_at=3)
        resumed_model, resumed = self._fit(split, tmp_path, "crash.npz")
        assert resumed.history == reference.history
        assert resumed.best_metric == reference.best_metric
        assert resumed.best_epoch == reference.best_epoch
        for name, value in ref_model.state_dict().items():
            np.testing.assert_array_equal(
                resumed_model.state_dict()[name], value)

    def test_resume_after_completion_is_a_noop(self, split, tmp_path):
        _, first = self._fit(split, tmp_path, "done.npz", epochs=3)
        model, second = self._fit(split, tmp_path, "done.npz", epochs=3)
        assert second.history == first.history
        assert second.best_metric == first.best_metric

    def test_missing_or_garbage_state_starts_fresh(self, split, tmp_path):
        model = make_model()
        path = tmp_path / "state.npz"
        config = TrainConfig(epochs=1, batch_size=32, seed=0,
                             checkpoint_path=str(path), resume=True)
        result = Trainer(model, split, config).fit()  # nothing to resume
        assert result.epochs_run == 1
        path.write_bytes(b"garbage")
        fresh = make_model()
        result = Trainer(fresh, split, config).fit()  # unreadable: fresh
        assert result.epochs_run == 1


class TestRunStoreChaos:
    def test_truncated_entry_checkpoint_retrains(self, tmp_path):
        store = RunStore(tmp_path)
        spec = smoke_spec()
        first = store.run(spec)
        blob = first.checkpoint.read_bytes()
        first.checkpoint.write_bytes(blob[:len(blob) // 2])
        model = store.load_model(spec)  # warns, invalidates, retrains
        for name, value in model.state_dict().items():
            assert np.isfinite(value).all(), name
        assert store.stats()["misses"] == 2

    def test_partial_metrics_json_is_a_miss(self, tmp_path):
        store = RunStore(tmp_path)
        spec = smoke_spec()
        first = store.run(spec)
        metrics = store.entry_dir(spec) / "metrics.json"
        metrics.write_text(metrics.read_text()[:40])  # torn write
        again = store.run(spec)
        assert not again.cached
        assert again.test_metrics == first.test_metrics

    def test_fault_between_ranks_and_metrics_never_commits(self, tmp_path):
        # The classic torn-entry scenario: ranks.npy is on disk but the
        # commit marker never lands.  The next run must see a miss and
        # rebuild an entry bitwise-identical to an unfaulted one.
        reference = RunStore(tmp_path / "ref").run(smoke_spec())
        store = RunStore(tmp_path / "chaos")
        spec = smoke_spec()
        with FaultPlan([Fault(site="runs.metrics.before", action="raise")]):
            with pytest.raises(FaultInjected):
                store.run(spec)
        entry = store.entry_dir(spec)
        assert (entry / "ranks.npy").exists()
        assert not (entry / "metrics.json").exists()
        outcome = store.run(spec)
        assert not outcome.cached
        assert outcome.test_metrics == reference.test_metrics
        np.testing.assert_array_equal(outcome.test_ranks,
                                      reference.test_ranks)

    def test_corrupted_ranks_payload_detected_by_digest(self, tmp_path):
        # ranks.npy has no internal checksum; the stored sha256 of the
        # intended bytes must catch silent data-region corruption.
        reference = RunStore(tmp_path / "ref").run(smoke_spec())
        store = RunStore(tmp_path / "chaos")
        spec = smoke_spec()
        with FaultPlan([Fault(site="runs.ranks", action="corrupt")],
                       seed=3):
            store.run(spec)  # payload fault: commits a damaged entry
        outcome = store.run(spec)  # digest mismatch -> miss -> retrain
        assert not outcome.cached
        np.testing.assert_array_equal(outcome.test_ranks,
                                      reference.test_ranks)

    def test_code_bug_propagates_instead_of_silent_retrain(self, tmp_path,
                                                           monkeypatch):
        store = RunStore(tmp_path)
        spec = smoke_spec()
        store.run(spec)

        def boom(*args, **kwargs):
            raise RuntimeError("genuine code bug")
        monkeypatch.setattr("repro.runs.load_checkpoint", boom)
        with pytest.raises(RuntimeError, match="genuine code bug"):
            store.load_model(spec)
        assert store.stats()["misses"] == 1  # no silent retrain happened

    def test_killed_training_resumes_in_store(self, tmp_path):
        # Kill the in-store training at the second per-epoch save, then
        # rerun: the entry must resume (not restart) and match an
        # uninterrupted store bit for bit.
        spec = smoke_spec(train={"epochs": 3, "batch_size": 64})
        reference = RunStore(tmp_path / "ref").run(spec)
        store = RunStore(tmp_path / "chaos")
        with FaultPlan([Fault(site="trainer.state.before", action="kill",
                              hit=2)]):
            with pytest.raises(SimulatedCrash):
                store.run(spec)
        entry = store.entry_dir(spec)
        assert (entry / "train_state.npz").exists()
        assert not (entry / "metrics.json").exists()
        outcome = store.run(spec)
        assert outcome.test_metrics == reference.test_metrics
        np.testing.assert_array_equal(outcome.test_ranks,
                                      reference.test_ranks)
        assert outcome.result.history == reference.result.history
        # committed entries carry no resume point
        assert not (entry / "train_state.npz").exists()
