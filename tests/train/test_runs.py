"""Tests for the content-addressed run store (``repro.runs``).

Covers the cache contract the experiment layer depends on: stable
cross-process hashes, canonical spec forms that share entries, bitwise
identical hit/miss outcomes, and corrupted-entry recovery.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import SCALES
from repro.registry import model_spec
from repro.runs import RunStore, run_spec

SMOKE = SCALES["smoke"]
REPO_ROOT = Path(__file__).resolve().parents[2]


def smoke_spec(**kwargs):
    model = kwargs.pop("model", model_spec("GRU4Rec"))
    return run_spec("beauty", SMOKE, model, **kwargs)


class TestSpecCanonicalization:
    def test_scale_object_and_name_equivalent(self):
        assert smoke_spec() == run_spec("beauty", "smoke",
                                        model_spec("GRU4Rec"))

    def test_data_seed_equal_to_seed_is_dropped(self):
        assert smoke_spec(seed=3, data_seed=3) == smoke_spec(seed=3)
        assert smoke_spec(seed=3, data_seed=0) != smoke_spec(seed=3)

    def test_default_tau_shares_hash_with_plain_ssdrec(self):
        # fig5's tau=1.0 point is exactly table4's SSDRec run.
        plain = smoke_spec(model=model_spec("SSDRec"))
        tau = smoke_spec(model=model_spec("SSDRec", initial_tau=1.0))
        assert tau.content_hash() == plain.content_hash()

    def test_default_backbone_is_dropped(self):
        plain = smoke_spec(model=model_spec("SSDRec"))
        explicit = smoke_spec(model=model_spec("SSDRec", backbone="SASRec"))
        assert explicit.content_hash() == plain.content_hash()

    def test_unknown_train_override_rejected(self):
        with pytest.raises(KeyError, match="train-config overrides"):
            smoke_spec(train={"verbose": True})

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            model_spec("NoSuchModel")

    def test_non_scalar_model_kwarg_rejected(self):
        with pytest.raises(TypeError):
            model_spec("SSDRec", backbone=object())

    def test_hash_stable_across_processes(self):
        spec = smoke_spec(model=model_spec("SSDRec", denoise_rounds=3),
                          train={"epochs": 1}, seed=2)
        code = ("from repro.registry import model_spec\n"
                "from repro.runs import run_spec\n"
                "spec = run_spec('beauty', 'smoke',"
                " model_spec('SSDRec', denoise_rounds=3),"
                " train={'epochs': 1}, seed=2)\n"
                "print(spec.content_hash())\n")
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.run([sys.executable, "-c", code], env=env,
                              capture_output=True, text=True, check=True)
        assert proc.stdout.strip() == spec.content_hash()


class TestRunStoreCache:
    def test_miss_then_hit_bitwise_identical(self, tmp_path):
        store = RunStore(tmp_path)
        spec = smoke_spec()
        first = store.run(spec)
        second = store.run(spec)
        assert not first.cached and second.cached
        assert store.stats() == {"hits": 1, "misses": 1}
        assert second.test_metrics == first.test_metrics
        assert second.valid_metrics == first.valid_metrics
        np.testing.assert_array_equal(second.test_ranks, first.test_ranks)
        assert second.result.history == first.result.history

    def test_force_retrains(self, tmp_path):
        store = RunStore(tmp_path)
        spec = smoke_spec()
        store.run(spec)
        forced = store.run(spec, force=True)
        assert not forced.cached
        assert store.stats() == {"hits": 0, "misses": 2}

    def test_partial_entry_is_retrained(self, tmp_path):
        # Simulate a crash between save_checkpoint and the metrics.json
        # commit marker: the entry must count as a miss and be rebuilt.
        store = RunStore(tmp_path)
        spec = smoke_spec()
        first = store.run(spec)
        (store.entry_dir(spec) / "metrics.json").unlink()
        again = store.run(spec)
        assert not again.cached
        assert again.test_metrics == first.test_metrics
        assert (store.entry_dir(spec) / "metrics.json").exists()

    def test_corrupted_spec_is_retrained(self, tmp_path):
        store = RunStore(tmp_path)
        spec = smoke_spec()
        store.run(spec)
        (store.entry_dir(spec) / "spec.json").write_text("{not json")
        assert not store.run(spec).cached

    def test_corrupted_checkpoint_retrained_by_load_model(self, tmp_path):
        store = RunStore(tmp_path)
        spec = smoke_spec()
        store.run(spec)
        (store.entry_dir(spec) / "model.npz").write_bytes(b"garbage")
        model = store.load_model(spec)
        assert model.num_parameters() > 0
        assert store.stats()["misses"] == 2  # original train + retrain

    def test_load_model_reproduces_stored_metrics(self, tmp_path):
        store = RunStore(tmp_path)
        spec = smoke_spec()
        outcome = store.run(spec)
        model = store.load_model(spec)
        evaluator = store.prepared(spec).evaluator("test", SMOKE.batch_size)
        np.testing.assert_array_equal(evaluator.ranks(model),
                                      outcome.test_ranks)

    def test_entry_layout(self, tmp_path):
        store = RunStore(tmp_path)
        spec = smoke_spec()
        store.run(spec)
        entry = store.entry_dir(spec)
        assert entry.name == spec.content_hash()
        assert {p.name for p in entry.iterdir()} == {
            "spec.json", "model.npz", "ranks.npy", "metrics.json"}
        stored = json.loads((entry / "spec.json").read_text())
        assert stored == spec.as_dict()

    def test_noisy_dataset_requires_noise_inject(self, tmp_path):
        store = RunStore(tmp_path)
        with pytest.raises(ValueError, match="noise_inject"):
            store.noisy_dataset(smoke_spec())
