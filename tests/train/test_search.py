"""Tests for the hyper-parameter grid search."""

import numpy as np
import pytest

from repro.data import generate, leave_one_out_split
from repro.models import GRU4Rec
from repro.train import TrainConfig
from repro.train.search import grid_search


@pytest.fixture(scope="module")
def split():
    return leave_one_out_split(generate("beauty", seed=0, scale=0.25),
                               max_len=8)


def factory_for(split):
    def factory(dim=8):
        return GRU4Rec(num_items=split.num_items, dim=dim, max_len=8,
                       rng=np.random.default_rng(0))
    return factory


class TestGridSearch:
    def test_paper_l2_grid(self, split):
        """The paper's weight-decay grid {0, 1e-3, 1e-4}."""
        result = grid_search(
            factory_for(split), split,
            param_grid={"weight_decay": [0.0, 1e-3, 1e-4]},
            base_config=TrainConfig(epochs=1, batch_size=64))
        assert len(result.trials) == 3
        assert result.best_params["weight_decay"] in (0.0, 1e-3, 1e-4)
        assert result.best_metric == max(m for _, m in result.trials)

    def test_cartesian_product(self, split):
        result = grid_search(
            factory_for(split), split,
            param_grid={"weight_decay": [0.0, 1e-3], "dim": [4, 8]},
            base_config=TrainConfig(epochs=1, batch_size=64))
        assert len(result.trials) == 4
        dims = {p["dim"] for p, _ in result.trials}
        assert dims == {4, 8}

    def test_model_kwargs_routed(self, split):
        captured = []

        def factory(dim=8):
            captured.append(dim)
            return GRU4Rec(num_items=split.num_items, dim=dim, max_len=8,
                           rng=np.random.default_rng(0))

        grid_search(factory, split, param_grid={"dim": [4, 6]},
                    base_config=TrainConfig(epochs=1, batch_size=64))
        assert captured == [4, 6]

    def test_ranked_order(self, split):
        result = grid_search(
            factory_for(split), split,
            param_grid={"learning_rate": [1e-3, 1e-8]},
            base_config=TrainConfig(epochs=2, batch_size=64))
        ranked = result.ranked()
        assert ranked[0][1] >= ranked[-1][1]

    def test_empty_grid_rejected(self, split):
        with pytest.raises(ValueError):
            grid_search(factory_for(split), split, param_grid={})
