"""Trainer over the streaming backend: bitwise parity with in-memory
training on the same data, and the sampled softmax loss used at full
scale."""

import numpy as np
import pytest

from repro.data import (Batch, generate, leave_one_out_split,
                        streaming_leave_one_out, write_store_from_dataset)
from repro.models import GRU4Rec
from repro.train import TrainConfig, Trainer


@pytest.fixture(scope="module")
def backends(tmp_path_factory):
    ds = generate("ml-100k", seed=8)
    store = write_store_from_dataset(
        ds, tmp_path_factory.mktemp("strtrain") / "s")
    memory = leave_one_out_split(ds, max_len=10)
    streaming = streaming_leave_one_out(store, max_len=10)
    return ds, memory, streaming


def fresh_model(ds):
    return GRU4Rec(ds.num_items, dim=8, max_len=10,
                   rng=np.random.default_rng(0))


class TestStreamingParity:
    def test_two_epochs_bitwise_identical(self, backends):
        """Same seeds, same data → identical loss/metric history whether
        the split is in-memory lists or mmap-backed streams."""
        ds, memory, streaming = backends
        config = TrainConfig(epochs=2, batch_size=16, seed=4, patience=5)
        histories = []
        for split in (memory, streaming):
            result = Trainer(fresh_model(ds), split, config).fit()
            histories.append(result.history)
        assert histories[0] == histories[1]

    def test_weights_identical_after_training(self, backends):
        ds, memory, streaming = backends
        config = TrainConfig(epochs=1, batch_size=16, seed=4, patience=5)
        models = []
        for split in (memory, streaming):
            model = fresh_model(ds)
            Trainer(model, split, config).fit()
            models.append(model)
        for a, b in zip(models[0].parameters(), models[1].parameters()):
            np.testing.assert_array_equal(a.data, b.data)


class TestSampledLoss:
    def make_batch(self, ds):
        split = leave_one_out_split(ds, max_len=10)
        examples = split.train[:8]
        from repro.data import DataLoader
        return next(iter(DataLoader(examples, batch_size=8, max_len=10,
                                    shuffle=False)))

    def test_deterministic_under_model_rng(self, backends):
        ds, _, _ = backends
        batch = self.make_batch(ds)
        losses = [float(fresh_model(ds).sampled_loss(batch).data)
                  for _ in range(2)]
        assert losses[0] == losses[1]

    def test_backward_reaches_embeddings(self, backends):
        ds, _, _ = backends
        model = fresh_model(ds)
        loss = model.sampled_loss(self.make_batch(ds))
        loss.backward()
        grads = [p.grad for p in model.parameters() if p.grad is not None]
        assert grads and any(np.abs(g).sum() > 0 for g in grads)

    def test_loss_decreases_with_sampled_objective(self, backends):
        ds, _, streaming = backends
        model = fresh_model(ds)
        config = TrainConfig(epochs=3, batch_size=16, seed=0, patience=5)
        result = Trainer(model, streaming, config,
                         loss_fn=lambda b: model.sampled_loss(b, 32)).fit()
        losses = [h["loss"] for h in result.history]
        assert losses[-1] < losses[0]

    def test_more_negatives_changes_objective(self, backends):
        ds, _, _ = backends
        batch = self.make_batch(ds)
        small = float(fresh_model(ds).sampled_loss(batch, 8).data)
        large = float(fresh_model(ds).sampled_loss(batch, 256).data)
        assert small != large
