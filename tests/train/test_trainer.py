"""Tests for the training loop: early stopping, checkpointing, hooks."""

import numpy as np
import pytest

from repro.data import generate, leave_one_out_split
from repro.eval import Evaluator
from repro.models import GRU4Rec
from repro.train import TrainConfig, Trainer


@pytest.fixture(scope="module")
def split():
    return leave_one_out_split(generate("beauty", seed=0, scale=0.3),
                               max_len=10)


def make_model(seed=0):
    return GRU4Rec(num_items=72, dim=16, max_len=10,
                   rng=np.random.default_rng(seed))


class TestTrainer:
    def test_runs_requested_epochs(self, split):
        model = make_model()
        result = Trainer(model, split,
                         TrainConfig(epochs=3, batch_size=32,
                                     patience=10)).fit()
        assert result.epochs_run == 3
        assert len(result.history) == 3
        assert result.train_seconds_per_epoch > 0

    def test_early_stopping_triggers(self, split):
        model = make_model()
        # Zero learning rate -> validation metric never improves after
        # the first epoch -> stops after patience more epochs.
        config = TrainConfig(epochs=50, batch_size=32, learning_rate=0.0,
                             patience=2)
        result = Trainer(model, split, config).fit()
        assert result.stopped_early
        assert result.epochs_run <= 1 + 2 + 1

    def test_best_checkpoint_restored(self, split):
        model = make_model()
        config = TrainConfig(epochs=4, batch_size=32, patience=10, seed=1)
        trainer = Trainer(model, split, config)
        result = trainer.fit()
        # The restored model must reproduce the best validation metric.
        metric = trainer.evaluator.evaluate(model)[config.eval_metric]
        np.testing.assert_allclose(metric, result.best_metric, atol=1e-12)

    def test_loss_decreases_over_training(self, split):
        model = make_model()
        result = Trainer(model, split,
                         TrainConfig(epochs=8, batch_size=32,
                                     patience=20)).fit()
        losses = [h["loss"] for h in result.history]
        assert losses[-1] < losses[0]

    def test_on_batch_end_hook_called(self, split):
        model = make_model()
        calls = []
        model.on_batch_end = lambda: calls.append(1)
        Trainer(model, split, TrainConfig(epochs=1, batch_size=32)).fit()
        assert len(calls) == len(
            list(range(0, len(split.train), 32)))

    def test_padding_row_stays_zero(self, split):
        model = make_model()
        Trainer(model, split, TrainConfig(epochs=2, batch_size=32)).fit()
        np.testing.assert_allclose(model.item_embedding.weight.data[0],
                                   np.zeros(16))

    def test_weight_decay_accepted(self, split):
        model = make_model()
        result = Trainer(model, split,
                         TrainConfig(epochs=1, batch_size=32,
                                     weight_decay=1e-3)).fit()
        assert np.isfinite(result.history[0]["loss"])


class TestEvaluatorIntegration:
    def test_eval_restores_training_mode(self, split):
        model = make_model()
        model.train()
        Evaluator(split.valid, max_len=10).evaluate(model)
        assert model.training

    def test_eval_requires_examples(self):
        with pytest.raises(ValueError):
            Evaluator([])

    def test_deterministic_in_eval_mode(self, split):
        model = make_model()
        ev = Evaluator(split.test, max_len=10)
        m1 = ev.evaluate(model)
        m2 = ev.evaluate(model)
        assert m1 == m2


class TestSchedulerIntegration:
    def test_epoch_scheduler_steps(self, split):
        from repro.nn.schedulers import ExponentialLR
        model = make_model()
        trainer = Trainer(
            model, split, TrainConfig(epochs=3, batch_size=32, patience=10),
            scheduler_factory=lambda opt: ExponentialLR(opt, gamma=0.5))
        result = trainer.fit()
        lrs = [h["lr"] for h in result.history]
        np.testing.assert_allclose(lrs, [5e-4, 2.5e-4, 1.25e-4])

    def test_plateau_scheduler_receives_metric(self, split):
        from repro.nn.schedulers import ReduceOnPlateau
        model = make_model()
        trainer = Trainer(
            model, split,
            TrainConfig(epochs=3, batch_size=32, learning_rate=0.0,
                        patience=10),
            scheduler_factory=lambda opt: ReduceOnPlateau(opt, patience=1,
                                                          min_lr=0.0))
        result = trainer.fit()
        # lr=0 means the metric never improves after epoch 1 -> reductions
        # (clamped at min_lr=0, so the rate can only stay or shrink).
        lrs = [h["lr"] for h in result.history]
        assert lrs[-1] <= lrs[0]
        assert len(lrs) == result.epochs_run
